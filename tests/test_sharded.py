"""The process-parallel sharded executor (``repro.engine.sharded``).

Contracts under test:

* **bit-identity** — every entry point (``search``, ``search_many``,
  ``asearch``) answers exactly what the single-process :class:`Engine`
  answers, on the paper fixtures and across the 50-random-instance
  sweep, regardless of slab placement backend;
* **routing** — whole queries route by a stable hash of
  ``(seeker, keywords)``: deterministic across processes and runs,
  independent of execution settings, and batches gather in input order;
* **failure containment** — a worker that dies mid-request fails only
  its in-flight queries with :class:`ShardUnavailableError` (shaped as
  a structured 503) and is respawned from the router's warm image; the
  respawned worker answers bit-identically;
* **fingerprint guards** — a placed slab sidecar that no longer matches
  the instance raises :class:`StaleIndexError` **before any worker
  forks** under ``stale_slabs="error"``, and ``"rebuild"`` recovers
  with correct answers;
* **stats** — per-shard breakdowns plus a merged rollup, rendered by
  :func:`format_engine_stats`.

No scenario sleeps: synchronization is the pipe round-trip itself, the
armed crash hook, and ``wait_for_respawn``'s generation watch.
"""

import asyncio
import random

import pytest

from repro.core import ConnectionIndex, S3kSearch
from repro.engine import Engine, EngineConfig, ShardedEngine, StaleIndexError
from repro.engine.errors import ShardUnavailableError, classify_error
from repro.engine.request import QueryRequest
from repro.engine.sharded import route_shard
from repro.eval import format_engine_stats
from repro.rdf import URI
from repro.social import Tag
from repro.storage import SQLiteStore

from .fixtures import figure1_instance, two_community_instance
from .instance_gen import VOCABULARY, random_instance

#: Randomized instances checked for sharded/single-process agreement
#: (the same sweep size as the batched-execution acceptance).
N_RANDOM_INSTANCES = 50

QUERIES = [
    ("u1", ["degre"], 3),
    ("u0", ["campus"], 2),
    ("u1", ["opinion", "debate"], 5),
    ("u4", ["ualberta"], 1),
    ("u0", ["debate"], 5),
]


def _ranked(response):
    """The full ranked payload — URIs and both interval bounds — so the
    comparison is bit-level, not just ordering."""
    result = response.result
    return (
        [(r.uri, r.lower, r.upper) for r in result.results],
        result.iterations,
        result.terminated_by,
    )


@pytest.fixture(scope="module")
def sharded():
    engine = ShardedEngine(figure1_instance(), shards=2)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def reference():
    return Engine(figure1_instance())


class TestRouting:
    def test_stable_and_settings_independent(self):
        base = QueryRequest(seeker=URI("u1"), keywords=(URI("degre"),), k=3)
        other = QueryRequest(
            seeker=URI("u1"), keywords=(URI("degre"),), k=5, time_budget=0.5
        )
        assert route_shard(base, 4) == route_shard(other, 4)
        assert route_shard(base, 4) == route_shard(base, 4)

    def test_distributes_across_shards(self):
        requests = [
            QueryRequest(seeker=URI(f"u{i}"), keywords=(URI(word),), k=1)
            for i in range(8)
            for word in VOCABULARY
        ]
        hit = {route_shard(request, 4) for request in requests}
        assert hit == {0, 1, 2, 3}

    def test_single_shard_works(self):
        engine = ShardedEngine(figure1_instance(), shards=1)
        try:
            assert engine.search(("u1", ["degre"])).result.results
        finally:
            engine.close()

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="shards must be"):
            ShardedEngine(figure1_instance(), shards=0)


class TestBitIdentity:
    def test_search_matches_engine(self, sharded, reference):
        for seeker, keywords, k in QUERIES:
            assert _ranked(sharded.search(seeker, keywords, k=k)) == _ranked(
                reference.search(seeker, keywords, k=k)
            )

    def test_search_many_gathers_in_input_order(self, sharded, reference):
        batch = [(s, kw) for s, kw, _ in QUERIES]
        got = sharded.search_many(batch, k=4)
        want = reference.search_many(batch, k=4)
        assert [r.request for r in got] == [r.request for r in want]
        for g, w in zip(got, want):
            assert _ranked(g) == _ranked(w)

    def test_asearch_matches_sync(self, sharded):
        async def go():
            return await asyncio.gather(
                *[sharded.asearch((s, kw), k=k) for s, kw, k in QUERIES]
            )

        for concurrent, (seeker, keywords, k) in zip(asyncio.run(go()), QUERIES):
            assert _ranked(concurrent) == _ranked(
                sharded.search(seeker, keywords, k=k)
            )

    def test_two_communities(self):
        engine = ShardedEngine(two_community_instance(), shards=2)
        reference = Engine(two_community_instance())
        try:
            for i in range(6):
                query = (f"u{i}", ["python"], 2)
                assert _ranked(engine.search(*query[:2], k=2)) == _ranked(
                    reference.search(*query[:2], k=2)
                )
        finally:
            engine.close()


class TestRandomizedSweep:
    @pytest.mark.parametrize("seed", range(N_RANDOM_INSTANCES))
    def test_sharded_matches_single_process(self, seed):
        rng = random.Random(seed)
        instance = random_instance(rng)
        reference = Engine(instance, config=EngineConfig(result_cache_size=0))
        sharded = ShardedEngine(random_instance(random.Random(seed)), shards=2)
        try:
            seekers = sorted(instance.users)
            queries = [
                (
                    rng.choice(seekers),
                    rng.sample(VOCABULARY, rng.randint(1, 2)),
                    rng.choice([1, 3, 5]),
                )
                for _ in range(3)
            ]
            batch = sharded.search_many([(s, kw, k) for s, kw, k in queries])
            for (seeker, keywords, k), response in zip(queries, batch):
                assert _ranked(response) == _ranked(
                    reference.search(seeker, keywords, k=k)
                ), (seed, seeker, keywords, k)
        finally:
            sharded.close()


class TestFailureContainment:
    def test_worker_crash_fails_inflight_with_structured_503(self):
        engine = ShardedEngine(figure1_instance(), shards=2)
        try:
            query = ("u1", ["degre"])
            target = engine.shard_of(engine._coerce(query))
            generation = engine._shards[target].generation
            first_pid = engine._shards[target].process.pid
            engine.crash_worker(target)
            with pytest.raises(ShardUnavailableError) as failure:
                engine.search(query)
            assert classify_error(failure.value) == (503, "shard_unavailable")
            # The replacement is a genuinely new process, forked from the
            # router's warm image (no store reload, no index rebuild).
            engine.wait_for_respawn(target, generation)
            assert engine._shards[target].process.pid != first_pid
            after = engine.search(query)
            assert _ranked(after) == _ranked(
                Engine(figure1_instance()).search(query)
            )
            stats = engine.stats()
            assert stats["router"]["worker_respawns"] == 1
            assert stats[f"shard_{target}"]["respawns"] == 1
            assert stats[f"shard_{target}"]["errors"] == 1
        finally:
            engine.close()

    def test_crash_spares_other_shards(self):
        engine = ShardedEngine(figure1_instance(), shards=2)
        try:
            query = ("u1", ["degre"])
            target = engine.shard_of(engine._coerce(query))
            other_query = next(
                q
                for q in (("u0", ["campus"]), ("u4", ["ualberta"]), ("u0", ["debate"]))
                if engine.shard_of(engine._coerce(q)) != target
            )
            engine.crash_worker(target)
            with pytest.raises(ShardUnavailableError):
                engine.search(query)
            # The sibling shard never noticed.
            assert engine.search(other_query).result is not None
            assert engine.stats()[f"shard_{engine.shard_of(engine._coerce(other_query))}"]["errors"] == 0
        finally:
            engine.close()

    def test_close_is_idempotent_and_final(self):
        engine = ShardedEngine(figure1_instance(), shards=2)
        engine.search(("u1", ["degre"]))
        engine.close()
        engine.close()
        with pytest.raises(ShardUnavailableError, match="stopped"):
            engine.search(("u1", ["degre"]))


class TestFingerprintGuards:
    @staticmethod
    def _stale_store(tmp_path):
        """Persist slabs, then mutate the instance so they are stale."""
        path = tmp_path / "stale.db"
        instance = figure1_instance()
        with SQLiteStore(path) as store:
            store.save_instance(instance)
            store.save_connection_index(ConnectionIndex(instance).ensure_all())
            instance.add_tag(
                Tag(URI("t:late"), URI("d0.5.1"), URI("u2"), keyword="campus")
            )
            instance.saturate()
            store.save_instance(instance)
        return path

    def test_mismatch_raises_before_any_fork(self, tmp_path):
        path = self._stale_store(tmp_path)
        with pytest.raises(StaleIndexError):
            ShardedEngine.from_store(path, shards=2)
        # The guard fired in the router, pre-fork: no sidecar-backed
        # worker ever served from the stale arrays.

    def test_rebuild_opt_in_recovers(self, tmp_path):
        path = self._stale_store(tmp_path)
        engine = ShardedEngine.from_store(path, shards=2, stale_slabs="rebuild")
        try:
            response = engine.search(("u1", ["campus"]), k=5)
            reference = S3kSearch(engine.instance).search("u1", ["campus"], k=5)
            assert [r.uri for r in response.result.results] == [
                r.uri for r in reference.results
            ]
        finally:
            engine.close()


class TestPlacementBackends:
    @staticmethod
    def _indexed_store(tmp_path):
        path = tmp_path / "indexed.db"
        instance = figure1_instance()
        with SQLiteStore(path) as store:
            store.save_instance(instance)
            store.save_connection_index(ConnectionIndex(instance).ensure_all())
        return path

    @pytest.mark.parametrize("backend", ("mmap", "shm", "heap"))
    def test_backends_are_bit_identical(self, tmp_path, backend):
        path = self._indexed_store(tmp_path)
        reference = Engine.from_store(path)
        engine = ShardedEngine.from_store(path, shards=2, slab_backend=backend)
        try:
            for seeker, keywords, k in QUERIES:
                assert _ranked(engine.search(seeker, keywords, k=k)) == _ranked(
                    reference.search(seeker, keywords, k=k)
                )
            router = engine.stats()["router"]
            if backend == "heap":
                assert router["slab_backend"] == "heap-cow"
            else:
                assert router["slab_backend"] == backend
                assert router["slabs_placed"] > 0
        finally:
            engine.close()

    def test_mmap_sidecar_lands_next_to_the_db(self, tmp_path):
        path = self._indexed_store(tmp_path)
        engine = ShardedEngine.from_store(path, shards=2)
        try:
            sidecar = tmp_path / "indexed.db.slabs"
            assert sidecar.is_dir()
            assert any(entry.suffix == ".npz" for entry in sidecar.iterdir())
        finally:
            engine.close()


class TestStats:
    def test_sections_rollup_and_rendering(self, sharded):
        for seeker, keywords, k in QUERIES:
            sharded.search(seeker, keywords, k=k)
        stats = sharded.stats()
        for section in ("engine", "router", "result_cache", "connection_index",
                        "batcher", "shard_0", "shard_1"):
            assert section in stats, section
        assert stats["router"]["shards"] == 2
        assert stats["router"]["alive_shards"] == 2
        assert (
            stats["router"]["answered"]
            == stats["shard_0"]["answered"] + stats["shard_1"]["answered"]
        )
        # The rollup sums the live workers' counters.
        assert stats["engine"]["queries_served"] >= len(QUERIES)
        assert (
            stats["result_cache"]["hits"]
            == stats["shard_0"]["cache_hits"] + stats["shard_1"]["cache_hits"]
        )
        for index in (0, 1):
            section = stats[f"shard_{index}"]
            assert section["alive"] is True
            assert section["pid"] > 0
            assert section["inflight"] == 0
            assert "qps" in section
        rendered = format_engine_stats(stats)
        assert "shard_0" in rendered and "router" in rendered
        assert "queries_routed" in rendered

    def test_connection_index_counted_once_not_per_shard(self, sharded):
        """The slabs are physically shared; summing N worker views would
        report N copies of one index."""
        stats = sharded.stats()
        single = Engine(figure1_instance()).warm().stats()
        assert (
            stats["connection_index"]["components_built"]
            == single["connection_index"]["components_built"]
        )
