"""In-process harness for the HTTP serving tier tests.

Boots an :class:`~repro.engine.http.HttpServer` on an **ephemeral
port** (the OS picks it; nothing collides under parallel test runs) and
tears it down through the real drain path, with the
:class:`~repro.engine.http.FaultInjector` hooks armed per test:

* ``faults.hold_kernel()`` parks every micro-batch on a
  ``threading.Event`` — requests sit in a *known* in-flight state until
  the test releases them, so no scenario needs a sleep to line up;
* ``server.wait_for_inflight(n)`` is the matching synchronization
  point on the admission side.

The client half is the raw-socket client from :mod:`repro.engine.http`
(one-shot :func:`http_call`, keep-alive
:class:`~repro.engine.http.HttpClientConnection`) — tests talk real
HTTP/1.1 bytes, not a shortcut into the handler.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import Optional

from repro.engine import EngineConfig, FaultInjector, HttpConfig, HttpServer

#: Generous ceiling: a hung drain / flush fails fast instead of wedging
#: the suite (mirrors tests/test_engine_async.py).
TIMEOUT = 30.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


@asynccontextmanager
async def running_server(
    engine=None,
    *,
    store=None,
    stale_slabs: str = "error",
    config: Optional[HttpConfig] = None,
    engine_config: Optional[EngineConfig] = None,
    faults: Optional[FaultInjector] = None,
    shards: int = 1,
    slab_backend: str = "mmap",
):
    """Boot a server (from an engine or a SQLite store) and always tear
    it down through :meth:`HttpServer.drain` — releasing any armed
    kernel gate first, so a failing test cannot wedge the executor.
    ``shards > 1`` (store mode) boots the process-parallel sharded
    executor behind the same server."""
    faults = faults if faults is not None else FaultInjector()
    config = config if config is not None else HttpConfig(port=0)
    if store is not None:
        server = HttpServer.from_store(
            store,
            engine_config=engine_config,
            config=config,
            stale_slabs=stale_slabs,
            faults=faults,
            shards=shards,
            slab_backend=slab_backend,
        )
    else:
        server = HttpServer(engine, config=config, faults=faults)
    await server.start()
    try:
        yield server
    finally:
        server.faults.release_kernel()
        await asyncio.wait_for(server.drain(), TIMEOUT)
