"""Tests for the weighted RDF graph (terms, triples, indexes)."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf import (
    Literal,
    RDFGraph,
    Triple,
    URI,
    coerce_term,
    is_literal,
    is_uri,
    make_triple,
    make_weighted,
)


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------
class TestTerms:
    def test_uri_is_string(self):
        uri = URI("http://example.org/a")
        assert uri == "http://example.org/a"
        assert is_uri(uri)
        assert not is_literal(uri)

    def test_literal_is_string(self):
        lit = Literal("graduate")
        assert lit == "graduate"
        assert is_literal(lit)
        assert not is_uri(lit)

    def test_uri_and_literal_compare_equal_but_type_distinguishable(self):
        # str semantics: equal content compares equal; isinstance separates.
        assert URI("x") == Literal("x")
        assert is_uri(URI("x")) and not is_uri(Literal("x"))

    def test_coerce_plain_string_to_literal(self):
        assert is_literal(coerce_term("hello"))

    def test_coerce_preserves_uri(self):
        uri = URI("u:1")
        assert coerce_term(uri) is uri

    def test_coerce_rejects_non_string(self):
        with pytest.raises(TypeError):
            coerce_term(42)


# ---------------------------------------------------------------------------
# Triples
# ---------------------------------------------------------------------------
class TestTriples:
    def test_make_triple_coerces_subject_and_predicate(self):
        triple = make_triple("u:1", "p:knows", "u:2")
        assert is_uri(triple.subject)
        assert is_uri(triple.predicate)

    def test_make_triple_rejects_literal_subject(self):
        with pytest.raises(ValueError):
            make_triple(Literal("x"), "p", "o")

    def test_make_triple_rejects_literal_predicate(self):
        with pytest.raises(ValueError):
            make_triple("s", Literal("p"), "o")

    def test_weight_default_is_one(self):
        wt = make_weighted("s", "p", "o")
        assert wt.weight == 1.0

    def test_weight_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_weighted("s", "p", "o", 1.5)
        with pytest.raises(ValueError):
            make_weighted("s", "p", "o", -0.1)

    def test_weighted_triple_exposes_plain_triple(self):
        wt = make_weighted("s", "p", "o", 0.5)
        assert wt.triple == make_triple("s", "p", "o")


# ---------------------------------------------------------------------------
# Graph
# ---------------------------------------------------------------------------
class TestGraph:
    def test_add_and_contains(self):
        graph = RDFGraph()
        assert graph.add("s", "p", "o")
        assert make_triple("s", "p", "o") in graph
        assert len(graph) == 1

    def test_add_duplicate_is_noop(self):
        graph = RDFGraph()
        graph.add("s", "p", "o")
        assert not graph.add("s", "p", "o")
        assert len(graph) == 1

    def test_re_add_keeps_max_weight(self):
        graph = RDFGraph()
        graph.add("s", "p", "o", 0.4)
        assert graph.add("s", "p", "o", 0.9)
        assert graph.weight(*make_triple("s", "p", "o")) == 0.9
        # lower weight does not demote
        assert not graph.add("s", "p", "o", 0.2)
        assert graph.weight(*make_triple("s", "p", "o")) == 0.9

    def test_discard(self):
        graph = RDFGraph()
        graph.add("s", "p", "o")
        triple = make_triple("s", "p", "o")
        assert graph.discard(*triple)
        assert triple not in graph
        assert not graph.discard(*triple)
        assert list(graph.triples(subject=URI("s"))) == []

    def test_pattern_by_subject(self):
        graph = RDFGraph()
        graph.add("s1", "p", "o1")
        graph.add("s1", "q", "o2")
        graph.add("s2", "p", "o1")
        results = {wt.triple for wt in graph.triples(subject=URI("s1"))}
        assert results == {make_triple("s1", "p", "o1"), make_triple("s1", "q", "o2")}

    def test_pattern_by_predicate_object(self):
        graph = RDFGraph()
        graph.add("s1", "p", "o")
        graph.add("s2", "p", "o")
        graph.add("s3", "p", "other")
        assert set(graph.subjects(URI("p"), Literal("o"))) == {URI("s1"), URI("s2")}

    def test_pattern_full_wildcard(self):
        graph = RDFGraph()
        graph.add("s1", "p", "o")
        graph.add("s2", "q", "o2")
        assert len(list(graph.triples())) == 2

    def test_pattern_subject_predicate(self):
        graph = RDFGraph()
        graph.add("s", "p", "o1")
        graph.add("s", "p", "o2")
        graph.add("s", "q", "o3")
        assert set(graph.objects(URI("s"), URI("p"))) == {Literal("o1"), Literal("o2")}

    def test_pattern_exact_triple(self):
        graph = RDFGraph()
        graph.add("s", "p", "o")
        found = list(graph.triples(URI("s"), URI("p"), Literal("o")))
        assert len(found) == 1 and found[0].weight == 1.0
        assert list(graph.triples(URI("s"), URI("p"), Literal("zzz"))) == []

    def test_iteration_yields_weights(self):
        graph = RDFGraph()
        graph.add("s", "p", "o", 0.3)
        [wt] = list(graph)
        assert wt.weight == 0.3

    def test_copy_is_independent(self):
        graph = RDFGraph()
        graph.add("s", "p", "o")
        clone = graph.copy()
        clone.add("s2", "p", "o")
        assert len(graph) == 1
        assert len(clone) == 2

    def test_has_property(self):
        graph = RDFGraph()
        graph.add("s", "p", "o")
        assert graph.has_property(URI("p"))
        assert not graph.has_property(URI("q"))


# ---------------------------------------------------------------------------
# Property-based: the graph behaves as a set of (s, p, o) with max-weights
# ---------------------------------------------------------------------------
_uris = st.text(alphabet="abcd:", min_size=1, max_size=6).map(URI)
_weights = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_entries = st.lists(st.tuples(_uris, _uris, _uris, _weights), max_size=40)


class TestGraphProperties:
    @given(_entries)
    def test_graph_matches_reference_dict(self, entries):
        graph = RDFGraph()
        reference = {}
        for s, p, o, w in entries:
            graph.add(s, p, o, w)
            key = Triple(s, p, o)
            reference[key] = max(reference.get(key, 0.0), w)
        assert len(graph) == len(reference)
        for triple, weight in reference.items():
            assert graph.weight(*triple) == weight

    @given(_entries)
    def test_subject_index_consistent(self, entries):
        graph = RDFGraph()
        for s, p, o, w in entries:
            graph.add(s, p, o, w)
        for s, p, o, _ in entries:
            matches = {wt.triple for wt in graph.triples(subject=s)}
            assert Triple(s, p, o) in matches
