"""Incremental index maintenance: delta-propagated live mutation.

Contracts under test:

* **delta log** — every public :class:`S3Instance` mutator records one
  typed :class:`MutationDelta` spanning exactly its version bump;
  ``deltas_since`` returns a contiguous chain or ``None`` (never a
  gapped one);
* **kernel patching** — ``S3kSearch.apply_deltas`` leaves every index
  structure (proximity CSR, component partition, connection slabs,
  keyword indexes) *bit-identical* to a from-scratch rebuild over the
  mutated instance, or refuses (returns ``None``) when the delta is
  inexpressible;
* **scoped invalidation** — result-cache and plan-cache entries
  untouched by a delta survive it: a comment-edge delta (no new
  keywords, no schema triples) must preserve cached keyword extensions
  by object identity, and unrelated cached answers keep serving;
* **the interleaved oracle sweep** — across 50 random instances,
  alternating writes and queries through the delta-maintained
  :class:`Engine` answer exactly what a freshly built kernel answers
  after every step, single-process and sharded;
* **serving tiers** — ``Engine.mutate``/``amutate`` report
  ``delta``/``rebuild`` honestly, the JSONL loop dispatches ``"op"``
  lines, ``POST /mutate`` carries the same admission control and error
  shaping as ``/search``, and the sharded barrier leaves every worker
  at the new version.
"""

import io
import json
import random

import numpy as np
import pytest

from repro.core import S3Instance, S3kSearch
from repro.core.instance import (
    CommentEdgeDelta,
    OpaqueDelta,
    TagDelta,
)
from repro.engine import Engine, MutationRequest, ShardedEngine, run_serve
from repro.engine.http import http_call
from repro.rdf import URI
from repro.social import Tag

from .fixtures import figure1_instance, two_community_instance
from .http_harness import run, running_server
from .instance_gen import VOCABULARY, random_instance

#: Randomized instances for the interleaved mutate/query oracle sweep
#: (same size as the batched-execution and sharding acceptances).
N_RANDOM_INSTANCES = 50

#: Sharded boots fork processes per seed; a smaller slice keeps the
#: sweep honest without dominating suite wall time.
N_SHARDED_INSTANCES = 8


def _ranked(result):
    """Bit-level payload of one answer: URIs, both interval bounds, and
    the termination record (iteration drift would show up here)."""
    return (
        [(r.uri, r.lower, r.upper) for r in result.results],
        result.iterations,
        result.terminated_by,
    )


def _assert_matches_fresh_kernel(answer, instance, seeker, keywords, k):
    oracle = S3kSearch(instance)
    assert _ranked(answer) == _ranked(oracle.search(seeker, keywords, k=k))


# ----------------------------------------------------------------------
# The instance delta log
# ----------------------------------------------------------------------
class TestDeltaLog:
    def test_add_tag_records_a_tag_delta(self):
        instance = figure1_instance()
        version = instance.version
        tag = Tag(URI("tX"), URI("d0.1"), URI("u2"), keyword="fresh")
        instance.add_tag(tag)
        (delta,) = instance.deltas_since(version)
        assert isinstance(delta, TagDelta)
        assert delta.tag.uri == tag.uri
        assert delta.base_version == version
        assert delta.version == instance.version
        assert delta.new_triples  # the exact base facts the write added

    def test_add_comment_edge_records_a_comment_delta(self):
        instance = figure1_instance()
        version = instance.version
        instance.add_comment_edge(URI("cNew"), URI("d0.1"))
        (delta,) = instance.deltas_since(version)
        assert isinstance(delta, CommentEdgeDelta)
        assert delta.comment == URI("cNew")
        assert delta.target == URI("d0.1")

    def test_structural_mutators_record_opaque_deltas(self):
        instance = figure1_instance()
        version = instance.version
        instance.add_user("u99")
        instance.add_social_edge("u1", "u99", 0.4)
        deltas = instance.deltas_since(version)
        # add_social_edge re-registers both endpoints, so the chain holds
        # one delta per version bump — each opaque, each span contiguous.
        assert deltas is not None and len(deltas) >= 2
        assert all(isinstance(delta, OpaqueDelta) for delta in deltas)
        assert {delta.operation for delta in deltas} == {
            "add_user", "add_social_edge"
        }

    def test_chain_is_contiguous_across_mixed_mutations(self):
        instance = figure1_instance()
        version = instance.version
        instance.add_tag(Tag(URI("tA"), URI("d0.1"), URI("u2"), keyword="a"))
        instance.add_user("u98")
        instance.add_comment_edge(URI("cB"), URI("d0.1"))
        deltas = instance.deltas_since(version)
        assert deltas is not None
        assert deltas[0].base_version == version
        for previous, current in zip(deltas, deltas[1:]):
            assert current.base_version == previous.version
        assert deltas[-1].version == instance.version

    def test_current_version_yields_empty_chain(self):
        instance = figure1_instance()
        assert instance.deltas_since(instance.version) == []

    def test_prehistoric_version_yields_none(self):
        # The log starts recording at construction; a version before the
        # first recorded span (or past the ring limit) is unknowable.
        instance = figure1_instance()
        assert instance.deltas_since(-1) is None


# ----------------------------------------------------------------------
# Kernel patching vs the from-scratch oracle
# ----------------------------------------------------------------------
class TestKernelApplyDeltas:
    def _patch(self, instance, mutate):
        kernel = S3kSearch(instance)
        # Warm the caches so scoped eviction has something to scope.
        kernel.search("u1", ["degre"], k=3)
        version = instance.version
        mutate(instance)
        info = kernel.apply_deltas(instance.deltas_since(version))
        return kernel, info

    def test_tag_delta_patches_bit_identically(self):
        instance = figure1_instance()
        kernel, info = self._patch(
            instance,
            lambda inst: inst.add_tag(
                Tag(URI("tZ"), URI("d0.1"), URI("u2"), keyword="ualberta")
            ),
        )
        assert info is not None and info["deltas_applied"] == 1
        oracle = S3kSearch(instance)
        # Structural state matches a rebuild exactly ...
        assert kernel.prox_index._nodes == oracle.prox_index._nodes
        patched = kernel.prox_index._transition_t
        rebuilt = oracle.prox_index._transition_t
        assert np.array_equal(patched.data, rebuilt.data)
        assert np.array_equal(patched.indices, rebuilt.indices)
        assert np.array_equal(patched.indptr, rebuilt.indptr)
        assert kernel._keyword_tags == oracle._keyword_tags
        assert kernel._component_stats == oracle._component_stats
        # ... and so does every answer.
        for seeker in ("u1", "u2", "u4"):
            for keywords in (["ualberta"], ["degre"], ["opinion", "debate"]):
                assert _ranked(kernel.search(seeker, keywords, k=4)) == _ranked(
                    oracle.search(seeker, keywords, k=4)
                )

    def test_new_author_grows_the_universe(self):
        # A tag by a never-seen author adds a node to the proximity
        # universe; the patch must remap every dense index.
        instance = figure1_instance()
        kernel, info = self._patch(
            instance,
            lambda inst: inst.add_tag(
                Tag(URI("tW"), URI("d0.1"), URI("uNew"), keyword="degre")
            ),
        )
        assert info is not None
        oracle = S3kSearch(instance)
        assert kernel.prox_index._nodes == oracle.prox_index._nodes
        assert _ranked(kernel.search("u1", ["degre"], k=5)) == _ranked(
            oracle.search("u1", ["degre"], k=5)
        )

    def test_comment_edge_delta_patches(self):
        instance = figure1_instance()
        kernel, info = self._patch(
            instance,
            lambda inst: inst.add_comment_edge(URI("cFresh"), URI("d0.1")),
        )
        assert info is not None
        oracle = S3kSearch(instance)
        assert _ranked(kernel.search("u1", ["degre"], k=5)) == _ranked(
            oracle.search("u1", ["degre"], k=5)
        )

    def test_opaque_delta_is_refused(self):
        instance = figure1_instance()
        kernel, info = self._patch(
            instance, lambda inst: inst.add_user("u97")
        )
        assert info is None

    def test_cross_component_merge_is_refused(self):
        # Commenting from one existing component onto another merges
        # them: idents shift, which the patch cannot express.
        instance = two_community_instance()
        kernel = S3kSearch(instance)
        assert len(kernel.component_index.components()) == 2
        version = instance.version
        instance.add_comment_edge(URI("docA"), URI("docB"))
        assert kernel.apply_deltas(instance.deltas_since(version)) is None

    def test_applied_deltas_advance_cache_version(self):
        instance = figure1_instance()
        kernel, info = self._patch(
            instance,
            lambda inst: inst.add_tag(
                Tag(URI("tV"), URI("d0.1"), URI("u2"), keyword="degre")
            ),
        )
        assert info is not None
        assert kernel._caches_version == instance.version


# ----------------------------------------------------------------------
# Scoped invalidation (result cache + plan cache)
# ----------------------------------------------------------------------
class TestScopedInvalidation:
    def test_cached_answers_stay_correct_after_a_delta(self):
        # Scoped eviction is an optimization with one obligation: any
        # answer served after the patch — from cache or recomputed —
        # must equal the from-scratch oracle's.
        instance = figure1_instance()
        kernel = S3kSearch(instance)
        kernel.search("u1", ["degre"], k=3)
        kernel.search("u4", ["ualberta"], k=2)
        version = instance.version
        instance.add_tag(Tag(URI("tQ"), URI("d0.1"), URI("u2"), keyword=None))
        assert kernel.apply_deltas(instance.deltas_since(version)) is not None
        for seeker, keywords, k in (
            ("u1", ["degre"], 3),
            ("u4", ["ualberta"], 2),
        ):
            _assert_matches_fresh_kernel(
                kernel.search(seeker, keywords, k=k),
                instance, seeker, keywords, k,
            )

    def test_comment_edge_delta_preserves_extension_plans(self):
        # The regression this PR pins: a comment-edge delta introduces
        # no keywords and no schema triples, so cached Ext(k) entries
        # must survive *by object identity* — not be rebuilt.
        instance = figure1_instance()
        kernel = S3kSearch(instance)
        kernel.search("u1", ["degre"], k=3)
        cache = kernel._plan_cache
        assert cache.extensions, "query should have populated the plan cache"
        before = {key: id(value) for key, value in cache.extensions.items()}
        version = instance.version
        instance.add_comment_edge(URI("cPlan"), URI("d0.1"))
        assert kernel.apply_deltas(instance.deltas_since(version)) is not None
        assert {
            key: id(value) for key, value in cache.extensions.items()
        } == before

    def test_schema_touching_tag_evicts_only_stale_extensions(self):
        # figure1's ontology extends "degre"-related terms; a new tag
        # whose keyword is unrelated must leave the "degre" extension
        # cached while registering its own keyword.
        instance = figure1_instance()
        kernel = S3kSearch(instance)
        kernel.search("u1", ["degre"], k=3)
        cache = kernel._plan_cache
        before = dict(cache.extensions)
        version = instance.version
        instance.add_tag(
            Tag(URI("tR"), URI("d0.1"), URI("u2"), keyword="brandnewterm")
        )
        assert kernel.apply_deltas(instance.deltas_since(version)) is not None
        for key, value in before.items():
            assert cache.extensions.get(key) is value


# ----------------------------------------------------------------------
# Engine facade
# ----------------------------------------------------------------------
class TestEngineMutate:
    def test_mutate_reports_delta_mode(self):
        engine = Engine(figure1_instance())
        engine.search("u1", ["degre"])  # build the kernel first
        response = engine.mutate(
            {"op": "add_tag", "uri": "tE", "subject": "d0.1",
             "author": "u2", "keyword": "livemut"}
        )
        assert response.mode == "delta"
        assert response.version == engine.instance.version
        assert engine.kernel_version == engine.instance.version
        _assert_matches_fresh_kernel(
            engine.search("u1", ["livemut"]).result,
            engine.instance, "u1", ["livemut"], 5,
        )
        engine.close()

    def test_invalidated_kernel_mutation_reports_rebuild(self):
        # invalidate() drops the kernel outright (no delta chain to
        # consume): the next mutation pays a full build and must say so.
        engine = Engine(figure1_instance())
        engine.invalidate()
        response = engine.mutate(
            {"op": "add_tag", "uri": "tE", "subject": "d0.1",
             "author": "u2", "keyword": "livemut"}
        )
        assert response.mode == "rebuild"
        assert response.components_patched == 0
        engine.close()

    def test_opaque_facade_write_falls_back_to_rebuild(self):
        engine = Engine(figure1_instance())
        engine.search("u1", ["degre"])
        engine.add_social_edge("u1", "u4", 0.5)
        engine.search("u1", ["degre"])
        maintenance = engine.stats()["maintenance"]
        assert maintenance["fallback_rebuilds"] == 1
        engine.close()

    def test_maintenance_stats_track_the_pipeline(self):
        engine = Engine(figure1_instance())
        engine.search("u1", ["degre"])
        engine.mutate(
            {"op": "add_tag", "uri": "tE", "subject": "d0.1",
             "author": "u2", "keyword": "livemut"}
        )
        engine.mutate({"op": "add_comment_edge", "comment": "cE", "target": "d0.1"})
        maintenance = engine.stats()["maintenance"]
        assert maintenance["mutations_applied"] == 2
        assert maintenance["deltas_applied"] == 2
        assert maintenance["fallback_rebuilds"] == 0
        assert maintenance["patch_wall_seconds"] >= 0.0
        engine.close()

    def test_kernel_version_is_public(self):
        engine = Engine(figure1_instance())
        # The constructor builds the kernel eagerly: already aligned.
        assert engine.kernel_version == engine.instance.version
        # A bare facade write leaves the kernel stale until the next
        # answer — the lag IS the pending-maintenance signal, and
        # reading either property must not trigger the rebuild.
        engine.add_comment_edge("cLag", "d0.1")
        assert engine.kernel_version == engine.instance.version - 1
        assert engine.stats()["engine"]["kernel_version"] == engine.kernel_version
        engine.search("u1", ["degre"])
        assert engine.kernel_version == engine.instance.version
        engine.close()

    def test_invalid_mutations_are_rejected(self):
        engine = Engine(figure1_instance())
        with pytest.raises(ValueError, match="unknown mutation op"):
            engine.mutate({"op": "drop_tables"})
        with pytest.raises(ValueError, match="needs"):
            engine.mutate({"op": "add_tag", "uri": "t1"})
        with pytest.raises(ValueError, match="unknown mutation fields"):
            engine.mutate(
                {"op": "add_comment_edge", "comment": "c", "target": "d0.1",
                 "bogus": 1}
            )
        with pytest.raises(TypeError):
            engine.mutate("add_tag")
        engine.close()

    def test_amutate_serializes_with_queries(self):
        async def scenario():
            engine = Engine(figure1_instance())
            try:
                await engine.asearch({"seeker": "u1", "keywords": ["degre"]})
                response = await engine.amutate(
                    {"op": "add_tag", "uri": "tA", "subject": "d0.1",
                     "author": "u2", "keyword": "asyncword"}
                )
                assert response.mode == "delta"
                answer = await engine.asearch(
                    {"seeker": "u1", "keywords": ["asyncword"]}
                )
                _assert_matches_fresh_kernel(
                    answer.result, engine.instance, "u1", ["asyncword"], 5
                )
            finally:
                await engine.aclose()

        run(scenario())


# ----------------------------------------------------------------------
# JSONL serving loop
# ----------------------------------------------------------------------
class TestServeMutations:
    def test_op_lines_dispatch_to_amutate(self):
        # Two serve calls: the loop answers lines concurrently, so a
        # query racing its own stream's mutation is *allowed* to see
        # the pre-write snapshot — the post-write read goes in a second
        # stream, after the first fully settled.
        out = io.StringIO()
        engine = Engine(figure1_instance())
        counters = run_serve(
            engine,
            [
                json.dumps({"seeker": "u1", "keywords": ["degre"], "id": "q1"}),
                json.dumps({"op": "add_tag", "uri": "tS", "subject": "d0.1",
                            "author": "u1", "keyword": "served", "id": "m1"}),
                json.dumps({"op": "noSuchOp", "id": "m2"}),
            ],
            out.write,
        )
        assert counters == {
            "requests": 3, "answered": 1, "mutated": 1, "errors": 1
        }
        counters = run_serve(
            engine,
            [json.dumps({"seeker": "u1", "keywords": ["served"], "id": "q2"})],
            out.write,
        )
        assert counters == {
            "requests": 1, "answered": 1, "mutated": 0, "errors": 0
        }
        records = {
            json.loads(line)["id"]: json.loads(line)
            for line in out.getvalue().splitlines()
        }
        assert records["m1"]["mode"] == "delta"
        assert records["m1"]["version"] == engine.instance.version
        assert "latency_ms" in records["m1"]
        assert records["m2"]["error"]["status"] == 400
        assert records["m2"]["error"]["type"] == "bad_request"
        assert records["q2"]["results"]


# ----------------------------------------------------------------------
# HTTP tier
# ----------------------------------------------------------------------
class TestHttpMutate:
    def test_mutate_answers_200_with_the_ack_record(self):
        async def scenario():
            async with running_server(Engine(figure1_instance())) as server:
                response = await http_call(
                    server.port, "POST", "/mutate",
                    body={"op": "add_tag", "uri": "tH", "subject": "d0.1",
                          "author": "u2", "keyword": "overhttp", "id": "m1"},
                )
                assert response.status == 200
                record = response.json()
                assert record["id"] == "m1"
                assert record["mode"] in ("delta", "rebuild")
                answer = await http_call(
                    server.port, "POST", "/search",
                    body={"seeker": "u1", "keywords": ["overhttp"]},
                )
                assert answer.status == 200
                assert answer.json()["results"]
                stats = await http_call(server.port, "GET", "/stats")
                assert stats.json()["server"]["mutations_applied"] == 1

        run(scenario())

    def test_malformed_mutations_answer_400(self):
        async def scenario():
            async with running_server(Engine(figure1_instance())) as server:
                bad_op = await http_call(
                    server.port, "POST", "/mutate", body={"op": "nope"}
                )
                assert bad_op.status == 400
                assert bad_op.json()["error"]["type"] == "bad_request"
                not_json = await http_call(
                    server.port, "POST", "/mutate", body="not json"
                )
                assert not_json.status == 400
                wrong_method = await http_call(server.port, "GET", "/mutate")
                assert wrong_method.status == 405
                assert wrong_method.headers["allow"] == "POST"

        run(scenario())

    def test_queue_full_answers_429(self):
        from repro.engine import FaultInjector

        async def scenario():
            faults = FaultInjector()
            async with running_server(
                Engine(figure1_instance()), faults=faults
            ) as server:
                faults.force_queue_full = True
                response = await http_call(
                    server.port, "POST", "/mutate",
                    body={"op": "add_comment_edge", "comment": "c9",
                          "target": "d0.1"},
                )
                assert response.status == 429
                assert "retry-after" in response.headers
                stats = await http_call(server.port, "GET", "/stats")
                assert stats.json()["server"]["rejected_429"] >= 1

        run(scenario())

    def test_draining_server_rejects_mutations(self):
        import asyncio

        from repro.engine import FaultInjector
        from repro.engine.http import HttpClientConnection

        async def scenario():
            faults = FaultInjector()
            faults.hold_kernel()  # parks an in-flight search: the drain
            # cannot finish until released, pinning the draining state.
            async with running_server(
                Engine(figure1_instance()), faults=faults
            ) as server:
                busy = await HttpClientConnection.open(server.port)
                probe = await HttpClientConnection.open(server.port)
                try:
                    inflight = asyncio.ensure_future(
                        busy.request(
                            "POST", "/search",
                            body={"seeker": "u1", "keywords": ["degre"]},
                        )
                    )
                    await server.wait_for_inflight(1)
                    drain = asyncio.ensure_future(server.drain())
                    await server.drain_started.wait()
                    response = await probe.request(
                        "POST", "/mutate",
                        body={"op": "add_comment_edge", "comment": "c9",
                              "target": "d0.1"},
                    )
                    assert response.status == 503
                    assert response.json()["error"]["type"] == "draining"
                    faults.release_kernel()
                    assert (await inflight).status == 200
                    await drain
                finally:
                    await busy.aclose()
                    await probe.aclose()

        run(scenario())


# ----------------------------------------------------------------------
# Sharded barrier
# ----------------------------------------------------------------------
class TestShardedMutate:
    def test_barrier_brings_every_shard_to_the_new_version(self):
        engine = ShardedEngine(figure1_instance(), shards=2)
        try:
            response = engine.mutate(
                {"op": "add_tag", "uri": "tB", "subject": "d0.1",
                 "author": "u2", "keyword": "broadcast"}
            )
            assert response.version == engine.instance.version
            stats = engine.stats()
            assert stats["router"]["mutation_generation"] == 1
            assert stats["engine"]["kernel_version"] == response.version
            # Fan a batch across both shards: every worker must answer
            # from the post-write snapshot.
            queries = [
                (f"u{i}", ["broadcast"]) for i in range(5)
            ]
            oracle = S3kSearch(engine.instance)
            for (seeker, keywords), answer in zip(
                queries, engine.search_many(queries, k=4)
            ):
                assert _ranked(answer.result) == _ranked(
                    oracle.search(seeker, keywords, k=4)
                )
            maintenance = engine.stats()["maintenance"]
            assert maintenance["mutations_applied"] >= 2  # both workers
        finally:
            engine.close()

    def test_amutate_runs_off_the_event_loop(self):
        async def scenario():
            engine = ShardedEngine(figure1_instance(), shards=2)
            try:
                response = await engine.amutate(
                    {"op": "add_comment_edge", "comment": "cS",
                     "target": "d0.1"}
                )
                assert response.version == engine.instance.version
            finally:
                await engine.aclose()

        run(scenario())


# ----------------------------------------------------------------------
# The interleaved mutate/query oracle sweep
# ----------------------------------------------------------------------
def _mutation_step(rng, instance, serial):
    """One random mutation against *instance*'s current state.

    Mixes expressible deltas (tags on existing nodes — sometimes by a
    brand-new author, growing the proximity universe — and fresh
    comment documents) with occasional cross-document comment edges
    that may merge components and force the rebuild fallback: the
    oracle must hold on *both* paths.
    """
    nodes = sorted(
        node for doc in instance.documents.values() for node in
        (n.uri for n in doc.nodes())
    )
    users = sorted(instance.users)
    roll = rng.random()
    if roll < 0.6:
        author = (
            URI(f"w{serial}") if rng.random() < 0.3 else rng.choice(users)
        )
        keyword = rng.choice(VOCABULARY) if rng.random() < 0.8 else None
        return {
            "op": "add_tag",
            "uri": f"live_t{serial}",
            "subject": rng.choice(nodes),
            "author": author,
            "keyword": keyword,
        }
    if roll < 0.85:
        return {
            "op": "add_comment_edge",
            "comment": f"live_c{serial}",
            "target": rng.choice(nodes),
        }
    documents = sorted(instance.documents)
    comment = rng.choice(documents)
    target = rng.choice([node for node in nodes if node != comment])
    return {"op": "add_comment_edge", "comment": comment, "target": target}


def _sweep_queries(rng, instance):
    users = sorted(instance.users)
    picks = []
    for _ in range(3):
        seeker = rng.choice(users)
        keywords = rng.sample(VOCABULARY, rng.randint(1, 2))
        picks.append((seeker, keywords))
    return picks


class TestInterleavedOracleSweep:
    @pytest.mark.parametrize("seed", range(N_RANDOM_INSTANCES))
    def test_single_process_engine_matches_rebuild(self, seed):
        rng = random.Random(2000 + seed)
        instance = random_instance(rng)
        engine = Engine(instance)
        try:
            for serial in range(3):
                engine.mutate(_mutation_step(rng, instance, serial))
                oracle = S3kSearch(instance)
                for seeker, keywords in _sweep_queries(rng, instance):
                    assert _ranked(
                        engine.search(seeker, keywords, k=4).result
                    ) == _ranked(oracle.search(seeker, keywords, k=4)), (
                        seed, serial, seeker, keywords
                    )
        finally:
            engine.close()

    @pytest.mark.parametrize("seed", range(N_SHARDED_INSTANCES))
    def test_sharded_engine_matches_rebuild(self, seed):
        rng = random.Random(3000 + seed)
        instance = random_instance(rng)
        engine = ShardedEngine(instance, shards=2)
        try:
            for serial in range(2):
                engine.mutate(_mutation_step(rng, engine.instance, serial))
                oracle = S3kSearch(engine.instance)
                for seeker, keywords in _sweep_queries(rng, engine.instance):
                    assert _ranked(
                        engine.search(seeker, keywords, k=4).result
                    ) == _ranked(oracle.search(seeker, keywords, k=4)), (
                        seed, serial, seeker, keywords
                    )
        finally:
            engine.close()
