"""Tests for con(d, k): every rule of Section 3.2 on the Figure 1 example."""

import pytest

from repro.core import ComponentConnections, ComponentIndex, S3Instance
from repro.documents import Document, build_document
from repro.rdf import (
    S3_COMMENTS_ON,
    S3_CONTAINS,
    S3_RELATED_TO,
    URI,
    Literal,
)
from repro.social import Tag

from .fixtures import figure1_instance


def _connections(instance, keyword, extension=None):
    """ComponentConnections for the component holding d0 (Figure 1)."""
    index = ComponentIndex(instance)
    component = index.component_of(URI("d0"))
    term = Literal(keyword) if not isinstance(keyword, URI) else keyword
    extensions = {term: extension if extension is not None else {term}}
    return ComponentConnections(instance, component, extensions), term


class TestContainsRule:
    def test_fragment_containment_connects_all_ancestors(self):
        # "university"-like case: "debate" is in d0.3.2; d0, d0.3 and
        # d0.3.2 itself all get a contains connection due to d0.3.2.
        instance = figure1_instance()
        connections, term = _connections(instance, "debate")
        for ancestor, distance in (("d0", 2), ("d0.3", 1), ("d0.3.2", 0)):
            resolved = connections.connections(URI(ancestor), term)
            assert (S3_CONTAINS, URI("d0.3.2"), URI(ancestor), distance) in [
                tuple(c) for c in resolved
            ]

    def test_contains_source_is_the_candidate_itself(self):
        instance = figure1_instance()
        connections, term = _connections(instance, "debate")
        [conn] = connections.connections(URI("d0.3"), term)
        assert conn.source == URI("d0.3")

    def test_no_connection_for_absent_keyword(self):
        instance = figure1_instance()
        connections, term = _connections(instance, "nonexistent")
        assert connections.connections(URI("d0"), term) == []

    def test_extension_keyword_creates_connection(self):
        # d1 contains kb:MS and kb:MS ≺sc "degre", so with the extension of
        # "degre" the reply d1 is connected to the query keyword.
        instance = figure1_instance()
        index = ComponentIndex(instance)
        component = index.component_of(URI("d1"))
        term = Literal("degre")
        connections = ComponentConnections(
            instance, component, {term: {term, URI("kb:MS")}}
        )
        resolved = connections.connections(URI("d1"), term)
        assert (S3_CONTAINS, URI("d1"), URI("d1"), 0) in [tuple(c) for c in resolved]


class TestTagRule:
    def test_keyword_tag_connects_ancestors(self):
        # u4's tag on d0.5.1 creates (relatedTo, d0.5.1, u4) in
        # con(d0, "university") — the paper's example verbatim.
        instance = figure1_instance()
        connections, term = _connections(instance, "university")
        resolved = connections.connections(URI("d0"), term)
        assert (S3_RELATED_TO, URI("d0.5.1"), URI("u4"), 2) in [
            tuple(c) for c in resolved
        ]

    def test_tag_on_tag_propagates_source(self):
        # A higher-level tag a2 on a: a2's author becomes a source of the
        # underlying fragment's connection.
        instance = figure1_instance()
        instance.add_tag(Tag(URI("t:meta"), URI("t:u4"), URI("u2"), keyword="university"))
        instance.saturate()
        connections, term = _connections(instance, "university")
        sources = {c.source for c in connections.connections(URI("d0"), term)}
        assert URI("u2") in sources
        assert URI("u4") in sources


class TestEndorsementRule:
    def test_endorsement_inherits_connections(self):
        # u5 endorses d0 (keyword-less tag): the endorsement is related to
        # "university" through d0's connections, and u5 becomes a source of
        # con(d0, university).
        instance = figure1_instance()
        instance.add_user("u5")
        instance.add_tag(Tag(URI("t:like"), URI("d0"), URI("u5")))
        instance.saturate()
        connections, term = _connections(instance, "university")
        sources = {c.source for c in connections.connections(URI("d0"), term)}
        assert URI("u5") in sources

    def test_endorsement_of_unrelated_fragment_adds_nothing(self):
        # Endorsing a fragment with no connection to the keyword does not
        # create one.
        instance = figure1_instance()
        instance.add_user("u5")
        instance.add_tag(Tag(URI("t:like"), URI("d0.1"), URI("u5")))
        instance.saturate()
        connections, term = _connections(instance, "university")
        sources = {c.source for c in connections.connections(URI("d0"), term)}
        assert URI("u5") not in sources

    def test_endorsement_of_endorsement(self):
        instance = figure1_instance()
        instance.add_user("u5")
        instance.add_user("u6")
        instance.add_tag(Tag(URI("t:like"), URI("d0"), URI("u5")))
        instance.add_tag(Tag(URI("t:like2"), URI("t:like"), URI("u6")))
        instance.saturate()
        connections, term = _connections(instance, "university")
        sources = {c.source for c in connections.connections(URI("d0"), term)}
        assert {URI("u5"), URI("u6")} <= sources


class TestCommentRule:
    def test_comment_connects_commented_ancestors(self):
        # d2 (contains "degre") comments on d0.3.2, therefore d0 is related
        # to "degre" through (commentsOn, d0.3.2, d2) — the paper's example.
        instance = figure1_instance()
        connections, term = _connections(instance, "degre")
        resolved = connections.connections(URI("d0"), term)
        assert (S3_COMMENTS_ON, URI("d0.3.2"), URI("d2"), 2) in [
            tuple(c) for c in resolved
        ]

    def test_comment_source_carries_over(self):
        # A tag on the comment d2: its author flows to d0 as a commentsOn
        # source ("the connection source carries over").
        instance = figure1_instance()
        instance.add_tag(Tag(URI("t:ond2"), URI("d2"), URI("u1"), keyword="degre"))
        instance.saturate()
        connections, term = _connections(instance, "degre")
        sources = {c.source for c in connections.connections(URI("d0"), term)}
        assert URI("u1") in sources
        assert URI("d2") in sources

    def test_nested_comments_propagate(self):
        # d3 comments on d2, d2 comments on d0.3.2: d3's keyword reaches d0.
        instance = figure1_instance()
        d3 = Document(build_document("d3", "text", ["nested"]))
        instance.add_document(d3, posted_by="u4")
        instance.add_comment_edge("d3", "d2")
        instance.saturate()
        connections, term = _connections(instance, "nested")
        sources = {c.source for c in connections.connections(URI("d0"), term)}
        assert URI("d3") in sources

    def test_comment_does_not_leak_downward(self):
        # The comment connects ancestors of d0.3.2, not unrelated siblings.
        instance = figure1_instance()
        connections, term = _connections(instance, "degre")
        assert connections.connections(URI("d0.5.1"), term) == []
        assert connections.connections(URI("d0.1"), term) == []


class TestCandidateExtraction:
    def test_candidates_require_all_keywords(self):
        instance = figure1_instance()
        index = ComponentIndex(instance)
        component = index.component_of(URI("d0"))
        terms = {Literal("debate"): {Literal("debate")},
                 Literal("campus"): {Literal("campus")}}
        connections = ComponentConnections(instance, component, terms)
        candidates = set(connections.candidate_documents())
        # Only d0 covers both "debate" (in d0.3.2) and "campus" (in d0.5.1).
        assert URI("d0") in candidates
        assert URI("d0.3.2") not in candidates
        assert URI("d0.5.1") not in candidates

    def test_single_keyword_candidates_are_ancestors(self):
        instance = figure1_instance()
        connections, term = _connections(instance, "debate")
        candidates = set(connections.candidate_documents())
        assert {URI("d0"), URI("d0.3"), URI("d0.3.2")} <= candidates

    def test_all_connections_covers_every_keyword(self):
        instance = figure1_instance()
        index = ComponentIndex(instance)
        component = index.component_of(URI("d0"))
        terms = {Literal("debate"): {Literal("debate")},
                 Literal("campus"): {Literal("campus")}}
        connections = ComponentConnections(instance, component, terms)
        per_keyword = connections.all_connections(URI("d0"))
        assert set(per_keyword) == set(terms)
        assert all(per_keyword.values())


class TestComponentIndex:
    def test_comment_chain_merges_components(self):
        instance = figure1_instance()
        index = ComponentIndex(instance)
        c_d0 = index.component_of(URI("d0"))
        assert index.component_of(URI("d1")) is c_d0
        assert index.component_of(URI("d2")) is c_d0
        assert index.component_of(URI("t:u4")) is c_d0

    def test_unrelated_documents_split(self):
        instance = figure1_instance()
        other = Document(build_document("lonely", "doc", ["alone"]))
        instance.add_document(other, posted_by="u4")
        instance.saturate()
        index = ComponentIndex(instance)
        assert index.component_of(URI("lonely")) is not index.component_of(URI("d0"))

    def test_component_keywords(self):
        instance = figure1_instance()
        index = ComponentIndex(instance)
        component = index.component_of(URI("d0"))
        assert Literal("degre") in component.keywords  # from d2
        assert Literal("university") in component.keywords  # tag keyword
        assert URI("kb:MS") in component.keywords  # from d1

    def test_matches_requires_every_extension(self):
        instance = figure1_instance()
        index = ComponentIndex(instance)
        component = index.component_of(URI("d0"))
        assert component.matches([{Literal("degre")}, {Literal("university")}])
        assert not component.matches([{Literal("degre")}, {Literal("zzz")}])
