"""Tests for the SQLite store: round trips and query equivalence."""

import pytest

from repro.core import S3kSearch, exact_scores
from repro.datasets import TwitterConfig, build_twitter_instance
from repro.rdf import URI, Literal
from repro.storage import SQLiteStore

from .fixtures import figure1_instance


class TestRoundTrip:
    def test_triples_survive(self):
        instance = figure1_instance()
        with SQLiteStore() as store:
            store.save_instance(instance)
            loaded = store.load_instance()
        originals = {wt.triple for wt in instance.graph}
        restored = {wt.triple for wt in loaded.graph}
        assert originals <= restored

    def test_weights_survive(self, tmp_path):
        instance = figure1_instance()
        instance.add_social_edge("u0", "u4", 0.37)
        path = tmp_path / "s3.db"
        with SQLiteStore(path) as store:
            store.save_instance(instance)
        with SQLiteStore(path) as store:
            loaded = store.load_instance()
        from repro.rdf import S3_SOCIAL

        assert loaded.graph.weight(URI("u0"), URI(S3_SOCIAL), URI("u4")) == 0.37

    def test_documents_rebuilt_with_structure(self):
        instance = figure1_instance()
        with SQLiteStore() as store:
            store.save_instance(instance)
            loaded = store.load_instance()
        assert set(loaded.documents) == set(instance.documents)
        original = instance.documents[URI("d0")]
        rebuilt = loaded.documents[URI("d0")]
        for node in original.nodes():
            assert rebuilt.node(node.uri).dewey == node.dewey
            assert rebuilt.node(node.uri).name == node.name
            assert tuple(rebuilt.node(node.uri).keywords) == tuple(node.keywords)

    def test_keyword_types_preserved(self):
        # URI keywords (entity mentions) must not degrade into literals.
        instance = figure1_instance()
        with SQLiteStore() as store:
            store.save_instance(instance)
            loaded = store.load_instance()
        node = loaded.documents[URI("d1")].node(URI("d1"))
        assert URI("kb:MS") in node.keywords
        assert isinstance(
            [k for k in node.keywords if k == "kb:MS"][0], URI
        )

    def test_tags_and_comments_survive(self):
        instance = figure1_instance()
        with SQLiteStore() as store:
            store.save_instance(instance)
            loaded = store.load_instance()
        assert set(loaded.tags) == set(instance.tags)
        assert loaded.tags[URI("t:u4")].keyword == "university"
        assert loaded.comments_on(URI("d0.3.2")) == [URI("d2")]

    def test_users_survive(self):
        instance = figure1_instance()
        with SQLiteStore() as store:
            store.save_instance(instance)
            loaded = store.load_instance()
        assert loaded.users == instance.users

    def test_triple_count(self):
        instance = figure1_instance()
        with SQLiteStore() as store:
            store.save_instance(instance)
            assert store.triple_count() == len(instance.graph)


class TestQueryEquivalence:
    def test_search_results_identical_after_reload(self):
        instance = figure1_instance()
        with SQLiteStore() as store:
            store.save_instance(instance)
            loaded = store.load_instance()
        original_engine = S3kSearch(instance)
        loaded_engine = S3kSearch(loaded)
        for keywords in (["debate"], ["degre"], ["degre", "university"]):
            a = original_engine.search("u1", keywords, k=3)
            b = loaded_engine.search("u1", keywords, k=3)
            assert a.uris == b.uris

    def test_generated_instance_round_trip(self):
        dataset = build_twitter_instance(
            TwitterConfig(n_users=30, n_statuses=60, seed=9)
        )
        instance = dataset.instance
        with SQLiteStore() as store:
            store.save_instance(instance)
            loaded = store.load_instance()
        seeker = sorted(instance.users)[0]
        before = exact_scores(instance, seeker, [Literal("w0")])
        after = exact_scores(loaded, seeker, [Literal("w0")])
        assert set(before) == set(after)
        for uri, value in before.items():
            assert after[uri] == pytest.approx(value)


class TestSlabSidecar:
    """``export_slab_sidecar``: the uncompressed, mmap'able re-encoding
    of the persisted ConnectionIndex slabs (what sharded serving maps)."""

    @staticmethod
    def _indexed_store(tmp_path):
        from repro.core import ConnectionIndex

        path = tmp_path / "indexed.db"
        instance = figure1_instance()
        store = SQLiteStore(path)
        store.save_instance(instance)
        store.save_connection_index(ConnectionIndex(instance).ensure_all())
        return store, instance

    def test_export_then_mmap_load_is_equivalent(self, tmp_path):
        import numpy as np

        from repro.storage import MmapSlabStore

        store, instance = self._indexed_store(tmp_path)
        with store:
            exported = store.export_slab_sidecar(tmp_path / "slabs")
            assert exported == store.connection_index_slab_count() > 0
            sidecar = MmapSlabStore(tmp_path / "slabs")
            via_sidecar = store.load_connection_index(
                instance, strict=True, slab_store=sidecar
            )
            via_blobs = store.load_connection_index(instance, strict=True)
        # Same components adopted, and the sidecar path serves the same
        # evidence through mmap-backed arrays (zero deserialization).
        assert via_sidecar.stats() == via_blobs.stats()
        slab = next(iter(via_sidecar._slabs.values()))
        assert isinstance(slab.ev_node, np.memmap)
        assert S3kSearch(instance, connection_index=via_sidecar).search(
            "u1", ["degre"], k=3
        ).results == S3kSearch(instance, connection_index=via_blobs).search(
            "u1", ["degre"], k=3
        ).results

    def test_export_is_idempotent(self, tmp_path):
        store, _ = self._indexed_store(tmp_path)
        with store:
            first = store.export_slab_sidecar(tmp_path / "slabs")
            manifest = (tmp_path / "slabs" / "manifest.json").read_text()
            second = store.export_slab_sidecar(tmp_path / "slabs")
        assert first == second
        assert (tmp_path / "slabs" / "manifest.json").read_text() == manifest

    def test_stale_sidecar_is_rewritten_on_reindex(self, tmp_path):
        from repro.core import ConnectionIndex
        from repro.social import Tag

        store, instance = self._indexed_store(tmp_path)
        with store:
            store.export_slab_sidecar(tmp_path / "slabs")
            instance.add_tag(
                Tag(URI("t:late"), URI("d0.5.1"), URI("u2"), keyword="campus")
            )
            instance.saturate()
            store.save_instance(instance)
            store.save_connection_index(ConnectionIndex(instance).ensure_all())
            refreshed = store.export_slab_sidecar(tmp_path / "slabs")
            assert refreshed == store.connection_index_slab_count()
            # The refreshed sidecar adopts strictly against the mutated
            # instance — the old fingerprints are gone with the old files.
            from repro.storage import MmapSlabStore

            index = store.load_connection_index(
                store.load_instance(),
                strict=True,
                slab_store=MmapSlabStore(tmp_path / "slabs"),
            )
        assert index.stats()["components_built"] > 0

    def test_partial_sidecar_falls_back_to_blobs(self, tmp_path):
        from repro.storage import MmapSlabStore

        store, instance = self._indexed_store(tmp_path)
        with store:
            empty_sidecar = MmapSlabStore(tmp_path / "empty")
            index = store.load_connection_index(
                instance, strict=True, slab_store=empty_sidecar
            )
            # Nothing placed, everything still warm from the SQLite blobs.
            assert (
                index.stats()["components_built"]
                == store.connection_index_slab_count()
            )
