"""Tests for S3 instance assembly: derived triples, network edges."""

import pytest

from repro.core import S3Instance
from repro.documents import Document, build_document
from repro.rdf import (
    RDF_TYPE,
    RDFS_SUBPROPERTY,
    S3_COMMENTS_ON,
    S3_CONTAINS,
    S3_DOC,
    S3_HAS_AUTHOR,
    S3_HAS_KEYWORD,
    S3_HAS_SUBJECT,
    S3_NODE_NAME,
    S3_PART_OF,
    S3_POSTED_BY,
    S3_RELATED_TO,
    S3_SOCIAL,
    S3_USER,
    Triple,
    URI,
    Literal,
    inverse_property,
)
from repro.social import Tag

from .fixtures import figure1_instance, figure3_instance


class TestUserTriples:
    def test_user_typed(self):
        instance = S3Instance()
        instance.add_user("u:a")
        assert Triple(URI("u:a"), RDF_TYPE, S3_USER) in instance.graph

    def test_social_edge_weight(self):
        instance = S3Instance()
        instance.add_social_edge("u:a", "u:b", 0.4)
        assert instance.graph.weight(URI("u:a"), S3_SOCIAL, URI("u:b")) == 0.4

    def test_social_subproperty_declared(self):
        instance = S3Instance()
        instance.add_social_edge("u:a", "u:b", 1.0, relation="vdk:follow")
        assert Triple(URI("vdk:follow"), RDFS_SUBPROPERTY, S3_SOCIAL) in instance.graph
        assert instance.graph.weight(URI("u:a"), URI("vdk:follow"), URI("u:b")) == 1.0
        assert instance.graph.weight(URI("u:a"), S3_SOCIAL, URI("u:b")) == 1.0

    def test_social_edge_rejects_bad_weight(self):
        instance = S3Instance()
        with pytest.raises(ValueError):
            instance.add_social_edge("a", "b", 1.2)


class TestDocumentTriples:
    def test_example_2_1_triples(self):
        # d0.3.2 partOf d0.3, d0.3 partOf d0 (paper Example 2.1).
        instance = figure1_instance()
        graph = instance.graph
        assert Triple(URI("d0.3.2"), S3_PART_OF, URI("d0.3")) in graph
        assert Triple(URI("d0.3"), S3_PART_OF, URI("d0")) in graph
        assert Triple(URI("d1"), S3_CONTAINS, URI("kb:MS")) in graph
        assert Triple(URI("d1"), S3_NODE_NAME, Literal("text")) in graph

    def test_every_node_typed_doc(self):
        instance = figure1_instance()
        for node in ("d0", "d0.3", "d0.3.2", "d0.5.1", "d1", "d2"):
            assert Triple(URI(node), RDF_TYPE, S3_DOC) in instance.graph

    def test_posted_by_and_inverse(self):
        instance = figure1_instance()
        assert Triple(URI("d0"), S3_POSTED_BY, URI("u0")) in instance.graph
        assert (
            Triple(URI("u0"), inverse_property(S3_POSTED_BY), URI("d0"))
            in instance.graph
        )

    def test_comment_edge_example_2_2(self):
        # d2 postedBy u3, d2 commentsOn d0.3.2.
        instance = figure1_instance()
        assert Triple(URI("d2"), S3_POSTED_BY, URI("u3")) in instance.graph
        assert Triple(URI("d2"), S3_COMMENTS_ON, URI("d0.3.2")) in instance.graph

    def test_comment_subrelation_saturates(self):
        # repliesTo ≺sp commentsOn: the generalized triple holds.
        instance = figure1_instance()
        assert Triple(URI("d1"), URI("repliesTo"), URI("d0")) in instance.graph
        assert Triple(URI("d1"), S3_COMMENTS_ON, URI("d0")) in instance.graph

    def test_duplicate_document_rejected(self):
        instance = S3Instance()
        doc = Document(build_document("d", "doc"))
        instance.add_document(doc)
        with pytest.raises(ValueError):
            instance.add_document(Document(build_document("d", "doc")))

    def test_node_to_document_mapping(self):
        instance = figure1_instance()
        assert instance.node_to_document[URI("d0.3.2")] == URI("d0")
        assert instance.document_of(URI("d0.5.1")).uri == URI("d0")
        assert instance.document_of(URI("nope")) is None


class TestTagTriples:
    def test_tag_triples_match_paper(self):
        # a type relatedTo, a hasSubject d0.5.1, a hasKeyword "university",
        # a hasAuthor u4 (Section 2.4).
        instance = figure1_instance()
        graph = instance.graph
        tag = URI("t:u4")
        assert Triple(tag, RDF_TYPE, S3_RELATED_TO) in graph
        assert Triple(tag, S3_HAS_SUBJECT, URI("d0.5.1")) in graph
        assert Triple(tag, S3_HAS_KEYWORD, Literal("university")) in graph
        assert Triple(tag, S3_HAS_AUTHOR, URI("u4")) in graph

    def test_tag_type_subclass(self):
        instance = S3Instance()
        instance.add_document(Document(build_document("d", "doc")))
        instance.add_tag(
            Tag(URI("a2"), URI("d"), URI("u"), keyword="x", tag_type=URI("NLP:recognize"))
        )
        instance.saturate()
        assert Triple(URI("a2"), RDF_TYPE, URI("NLP:recognize")) in instance.graph
        assert Triple(URI("a2"), RDF_TYPE, S3_RELATED_TO) in instance.graph

    def test_endorsement_has_no_keyword(self):
        instance = S3Instance()
        instance.add_document(Document(build_document("d", "doc")))
        instance.add_tag(Tag(URI("a"), URI("d"), URI("u")))
        assert not list(instance.graph.objects(URI("a"), S3_HAS_KEYWORD))
        assert instance.tags[URI("a")].is_endorsement

    def test_duplicate_tag_rejected(self):
        instance = S3Instance()
        instance.add_document(Document(build_document("d", "doc")))
        instance.add_tag(Tag(URI("a"), URI("d"), URI("u")))
        with pytest.raises(ValueError):
            instance.add_tag(Tag(URI("a"), URI("d"), URI("u")))

    def test_tag_author_becomes_user(self):
        instance = S3Instance()
        instance.add_document(Document(build_document("d", "doc")))
        instance.add_tag(Tag(URI("a"), URI("d"), URI("u:new")))
        assert instance.is_user(URI("u:new"))


class TestNetworkEdges:
    def test_part_of_is_not_a_network_edge(self):
        instance = figure3_instance()
        targets = [t for t, _, _ in instance.network_out_edges(URI("URI0.1"))]
        assert URI("URI0") not in targets  # partOf excluded

    def test_contains_is_not_a_network_edge(self):
        instance = figure3_instance()
        edges = list(instance.network_out_edges(URI("URI0.0.0")))
        assert all(not isinstance(t, Literal) for t, _, _ in edges)

    def test_social_and_posted_are_network_edges(self):
        instance = figure3_instance()
        u0_targets = {t for t, _, _ in instance.network_out_edges(URI("u0"))}
        # u0 posted URI0 (inverse postedBy edge) and knows u3.
        assert u0_targets == {URI("URI0"), URI("u3")}

    def test_network_nodes_universe(self):
        instance = figure3_instance()
        nodes = instance.network_nodes()
        assert URI("u0") in nodes
        assert URI("URI0.0.0") in nodes
        assert URI("a0") in nodes
        assert Literal("k0") not in nodes

    def test_vertical_neighborhood_of_user_is_singleton(self):
        instance = figure3_instance()
        assert instance.vertical_neighborhood(URI("u0")) == {URI("u0")}

    def test_vertical_neighborhood_of_fragment(self):
        instance = figure3_instance()
        neighborhood = instance.vertical_neighborhood(URI("URI0.0"))
        assert neighborhood == {URI("URI0"), URI("URI0.0"), URI("URI0.0.0")}

    def test_comments_bookkeeping(self):
        instance = figure1_instance()
        assert instance.comments_on(URI("d0.3.2")) == [URI("d2")]
        assert instance.comment_targets(URI("d2")) == [URI("d0.3.2")]
        assert instance.tags_on(URI("d0.5.1")) == [URI("t:u4")]
