"""The Engine facade: request normalization, lifecycle, stats, guards.

Covers the ISSUE 3 satellites on the synchronous side:

* ``QueryRequest.from_obj`` subsumes the deleted ad-hoc coercion paths
  (regression-tested against the legacy ``_coerce_query`` semantics);
* ``Engine.stats()`` is the single counter surface (index + caches +
  batcher) and ``run_workload_batched`` snapshots it;
* mutations through the facade (``add_tag`` / ``add_comment_edge``)
  invalidate caches and rebuild the kernel before the next answer;
* a persisted index slab whose fingerprint no longer matches the
  instance is refused loudly (``StaleIndexError``) unless rebuilding is
  requested.
"""

import random

import pytest

from repro import (
    Engine,
    EngineConfig,
    QueryRequest,
    S3kSearch,
    StaleIndexError,
    Tag,
    URI,
)
from repro.core import ConnectionIndex
from repro.core.search import _normalize_keywords
from repro.documents import Document, build_document
from repro.queries import QuerySpec, WorkloadBuilder, engine_runner, run_workload_batched
from repro.storage import SQLiteStore

from .fixtures import figure1_instance, two_community_instance
from .instance_gen import VOCABULARY, random_instance


def legacy_coerce(query, default_k):
    """The pre-Engine ``_coerce_query`` rules, inlined as the oracle."""
    if hasattr(query, "seeker") and hasattr(query, "keywords"):
        return (
            getattr(query, "seeker"),
            getattr(query, "keywords"),
            int(getattr(query, "k", default_k) or default_k),
        )
    if isinstance(query, (tuple, list)):
        if len(query) == 2:
            seeker, keywords = query
            return seeker, keywords, default_k
        if len(query) == 3:
            seeker, keywords, query_k = query
            return seeker, keywords, int(query_k)
    raise TypeError(query)


class TestQueryRequestFromObj:
    @pytest.mark.parametrize(
        "query",
        [
            ("u1", ["degre"]),
            ("u1", ["degre", "campus"], 3),
            ["u0", ("debate",), 1],
            QuerySpec(URI("u4"), (URI("kb:MS"),), 7),
            QuerySpec(URI("u4"), ("degre", "degre"), 0),  # k=0 -> default
        ],
    )
    def test_matches_legacy_coercion(self, query):
        for default_k in (5, 9):
            seeker, keywords, k = legacy_coerce(query, default_k)
            request = QueryRequest.from_obj(query, default_k=default_k)
            assert request.seeker == URI(seeker)
            assert request.keywords == _normalize_keywords(keywords)
            assert request.k == k

    def test_mapping_shape(self):
        request = QueryRequest.from_obj(
            {"seeker": "u1", "keywords": ["a", "b", "a"], "k": 2, "semantic": False}
        )
        assert request.seeker == URI("u1")
        assert [str(kw) for kw in request.keywords] == ["a", "b"]
        assert request.k == 2 and request.semantic is False

    def test_mapping_k_zero_falls_back(self):
        request = QueryRequest.from_obj(
            {"seeker": "u1", "keywords": ["a"], "k": 0}, default_k=7
        )
        assert request.k == 7

    def test_request_passthrough(self):
        original = QueryRequest(seeker="u1", keywords=("a",), k=2, semantic=False)
        assert QueryRequest.from_obj(original, default_k=9) is original

    def test_requests_are_their_own_identity(self):
        a = QueryRequest.from_obj(("u1", ["x", "y", "x"], 3))
        b = QueryRequest.from_obj(QuerySpec(URI("u1"), ("x", "y"), 3))
        assert a == b and hash(a) == hash(b)

    @pytest.mark.parametrize(
        "bad",
        [
            42,
            ("u1",),
            ("u1", ["a"], 3, "extra"),
            {"seeker": "u1"},
            {"seeker": "u1", "keywords": ["a"], "nope": 1},
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(TypeError):
            QueryRequest.from_obj(bad)

    def test_rejects_bare_string_keywords(self):
        """'keywords': 'w0' must not silently become ('w', '0')."""
        with pytest.raises(TypeError, match="single +string"):
            QueryRequest(seeker="u1", keywords="w0")
        with pytest.raises(TypeError, match="single +string"):
            QueryRequest.from_obj({"seeker": "u1", "keywords": "w0"})

    def test_kernel_honors_per_request_settings(self):
        """A QueryRequest's own semantic flag must execute, not the
        batch-level default — even mixed within one batch."""
        kernel = S3kSearch(figure1_instance())
        plain = QueryRequest(seeker="u1", keywords=("degre",), k=3, semantic=False)
        extended = QueryRequest(seeker="u1", keywords=("degre",), k=3, semantic=True)
        without, with_semantics = kernel.search_many([plain, extended])
        assert without.results == kernel.search(
            "u1", ["degre"], k=3, semantic=False
        ).results
        assert with_semantics.results == kernel.search(
            "u1", ["degre"], k=3, semantic=True
        ).results
        assert without.results != with_semantics.results

    def test_kernel_accepts_requests_and_legacy_shapes(self):
        instance = figure1_instance()
        kernel = S3kSearch(instance)
        mixed = [
            QueryRequest(seeker="u1", keywords=("degre",), k=3),
            ("u0", ["debate"], 2),
            {"seeker": "u4", "keywords": ["university"]},
            QuerySpec(URI("u1"), ("degre",), 3),
        ]
        batched = kernel.search_many(mixed, k=5)
        for query, result in zip(mixed, batched):
            request = QueryRequest.from_obj(query, default_k=5)
            single = kernel.search(request.seeker, request.keywords, k=request.k)
            assert result.results == single.results


class TestEngineFacade:
    def test_search_matches_kernel(self):
        instance = figure1_instance()
        engine = Engine(instance)
        kernel = S3kSearch(instance)
        for seeker, keywords, k in [
            ("u1", ["degre"], 3),
            ("u0", ["debate"], 2),
            ("u4", ["university", "degre"], 5),
        ]:
            response = engine.search(seeker, keywords, k=k)
            assert response.result.results == kernel.search(seeker, keywords, k=k).results
            assert response.batch_size == 1
            assert response.request.k == k

    def test_search_many_matches_search(self):
        instance = two_community_instance()
        engine = Engine(instance)
        queries = [(f"u{i}", ["python"], 2) for i in range(6)]
        responses = engine.search_many(queries)
        for query, response in zip(queries, responses):
            assert response.results == engine.search(query).results

    def test_search_many_groups_mixed_settings(self):
        instance = figure1_instance()
        engine = Engine(instance)
        kernel = S3kSearch(instance)
        plain = QueryRequest(seeker="u1", keywords=("degre",), k=3, semantic=False)
        semantic = QueryRequest(seeker="u1", keywords=("degre",), k=3, semantic=True)
        responses = engine.search_many([plain, semantic, plain])
        assert responses[0].results == kernel.search("u1", ["degre"], k=3, semantic=False).results
        assert responses[1].results == kernel.search("u1", ["degre"], k=3, semantic=True).results
        assert responses[2].results == responses[0].results

    def test_explicit_settings_override_a_query_request(self):
        """engine.search(request, semantic=False) must honor the explicit
        override, not silently keep the request's own setting."""
        instance = figure1_instance()
        engine = Engine(instance)
        kernel = S3kSearch(instance)
        request = QueryRequest(seeker="u1", keywords=("degre",), k=3)  # semantic
        overridden = engine.search(request, semantic=False)
        assert overridden.request.semantic is False
        assert (
            overridden.results
            == kernel.search("u1", ["degre"], k=3, semantic=False).results
        )
        assert engine.search(request, k=1).request.k == 1
        # No override: the request passes through untouched.
        assert engine.search(request).request is request

    def test_stats_sections(self):
        engine = Engine(figure1_instance())
        engine.search("u1", ["degre"], k=3)
        stats = engine.stats()
        assert set(stats) == {
            "engine",
            "result_cache",
            "connection_index",
            "batcher",
            "exploration",
            "maintenance",
        }
        assert stats["engine"]["queries_served"] == 1
        assert stats["maintenance"]["mutations_applied"] == 0
        assert stats["result_cache"]["misses"] == 1
        assert stats["connection_index"]["components_built"] >= 1
        assert stats["batcher"] == {}  # async path never used
        exploration = stats["exploration"]
        for counter in (
            "stop_checks_fast",
            "stop_checks_full",
            "clean_checks_fast",
            "clean_checks_full",
            "bounds_refresh_rows",
        ):
            assert counter in exploration
        # every stop certification is either screened or replayed
        assert (
            exploration["stop_checks_fast"] + exploration["stop_checks_full"]
            >= 1
        )
        assert exploration["bounds_refresh_rows"] >= 1
        for phase in ("step", "discover", "bounds", "clean_stop"):
            assert f"phase_{phase}_seconds" in exploration

    def test_stats_exploration_zeroed_before_first_query(self):
        engine = Engine(figure1_instance())
        exploration = engine.stats()["exploration"]
        assert exploration == engine.exploration_stats
        assert exploration  # kernel built eagerly, counters present
        assert all(value == 0 for value in exploration.values())

    def test_run_workload_batched_snapshots_engine_stats(self):
        instance = two_community_instance()
        engine = Engine(instance)
        workload = WorkloadBuilder(instance, seed=3).build("+", 1, 2, 8)
        stats = run_workload_batched(engine, workload, batch_size=4)
        assert stats.n_queries == 8
        assert stats.engine_stats["engine"]["queries_served"] == 8
        assert stats.cache_stats == stats.engine_stats["result_cache"]

    def test_engine_runner_facade_and_kernel_agree(self):
        instance = figure1_instance()
        facade_run = engine_runner(Engine(instance))
        kernel_run = engine_runner(S3kSearch(instance))
        spec = QuerySpec(URI("u1"), ("degre",), 3)
        assert facade_run(spec).results == kernel_run(spec).results

    def test_engine_runner_uses_configured_default_k(self):
        from repro.queries.runner import engine_runner as runner

        engine = Engine(figure1_instance(), config=EngineConfig(default_k=2))
        response = runner(engine)(("u1", ["degre"]))
        assert response.request.k == 2

    def test_positional_k_matches_kernel_signature(self):
        instance = figure1_instance()
        engine = Engine(instance)
        kernel = S3kSearch(instance)
        assert (
            engine.search("u1", ["degre"], 1).results
            == kernel.search("u1", ["degre"], 1).results
        )
        assert engine.search("u1", ["degre"], 1).request.k == 1

    def test_stats_is_a_pure_read(self):
        """Polling stats() after a mutation must not refresh the kernel."""
        engine = Engine(figure1_instance())
        engine.search("u1", ["degre"], k=3)
        engine.add_tag(Tag(URI("t:p"), URI("d0.3.1"), URI("u0"), keyword="degre"))
        before = engine.stats()["engine"]
        assert before["kernel_rebuilds"] == 0  # poll did not rebuild
        assert before["instance_version"] > before["kernel_version"]
        assert engine.stats()["maintenance"]["deltas_applied"] == 0
        engine.search("u1", ["degre"], k=3)  # the query pays the catch-up
        after = engine.stats()
        # An expressible tag write is consumed as a delta, not a rebuild.
        assert after["engine"]["kernel_rebuilds"] == 0
        assert after["maintenance"]["deltas_applied"] == 1
        assert (
            after["engine"]["instance_version"]
            == after["engine"]["kernel_version"]
        )

    def test_s3k_runner_is_deprecated_alias(self):
        from repro.queries import s3k_runner

        engine = S3kSearch(figure1_instance())
        with pytest.warns(DeprecationWarning):
            run = s3k_runner(engine)
        assert run(QuerySpec(URI("u1"), ("degre",), 3)).results


class TestFacadeInvalidation:
    def test_add_tag_invalidates_and_serves_fresh_answers(self):
        instance = figure1_instance()
        engine = Engine(instance)
        engine.search("u1", ["campus"], k=5)
        engine.search("u1", ["campus"], k=5)
        assert engine.stats()["result_cache"]["hits"] == 1

        engine.add_tag(Tag(URI("t:new"), URI("d0.3.1"), URI("u0"), keyword="campus"))
        after = engine.search("u1", ["campus"], k=5)
        stats = engine.stats()
        # The expressible tag write is patched in as a delta; the stale
        # cached answer is evicted (a second miss), not replayed.
        assert stats["engine"]["kernel_rebuilds"] == 0
        assert stats["maintenance"]["deltas_applied"] == 1
        assert stats["result_cache"]["misses"] == 2
        assert URI("d0.3.1") in [r.uri for r in after.results]
        fresh = S3kSearch(engine.instance).search("u1", ["campus"], k=5)
        assert after.result.results == fresh.results

    def test_add_comment_edge_invalidates(self):
        instance = figure1_instance()
        engine = Engine(instance)
        before = engine.search("u1", ["opportun"], k=5)
        comment = build_document("d9", "text", ["opportun"])
        engine.add_document(Document(comment), posted_by="u0")
        engine.add_comment_edge("d9", "d0.5.1")
        after = engine.search("u1", ["opportun"], k=5)
        fresh = S3kSearch(engine.instance).search("u1", ["opportun"], k=5)
        assert after.result.results == fresh.results
        assert after.result.results != before.result.results
        assert engine.stats()["engine"]["kernel_rebuilds"] >= 1

    def test_direct_instance_mutation_is_also_caught(self):
        instance = figure1_instance()
        engine = Engine(instance)
        engine.search("u1", ["degre"], k=3)
        instance.add_tag(Tag(URI("t:d"), URI("d0.3.2"), URI("u2"), keyword="degre"))
        after = engine.search("u1", ["degre"], k=3)
        fresh = S3kSearch(instance).search("u1", ["degre"], k=3)
        assert after.result.results == fresh.results


class TestStoreAndStaleSlabs:
    def _store_with_stale_index(self, tmp_path):
        """A store whose persisted slabs predate an instance mutation."""
        path = tmp_path / "stale.db"
        instance = figure1_instance()
        with SQLiteStore(path) as store:
            store.save_instance(instance)
            store.save_connection_index(ConnectionIndex(instance).ensure_all())
            # Mutate and re-save the instance: the stored slabs now carry
            # fingerprints of content that no longer exists.
            instance.add_tag(
                Tag(URI("t:late"), URI("d0.5.1"), URI("u2"), keyword="campus")
            )
            instance.saturate()
            store.save_instance(instance)
        return path

    def test_from_store_round_trip_adopts_fresh_slabs(self, tmp_path):
        path = tmp_path / "fresh.db"
        instance = figure1_instance()
        with SQLiteStore(path) as store:
            store.save_instance(instance)
            store.save_connection_index(ConnectionIndex(instance).ensure_all())
        engine = Engine.from_store(path)
        stats = engine.stats()["connection_index"]
        assert stats["slabs_persisted"] >= 1
        assert stats["slabs_adopted"] == stats["slabs_persisted"]
        reference = S3kSearch(figure1_instance()).search("u1", ["degre"], k=3)
        assert engine.search("u1", ["degre"], k=3).result.results == reference.results

    def test_stale_slab_is_refused_with_clear_error(self, tmp_path):
        path = self._store_with_stale_index(tmp_path)
        with pytest.raises(StaleIndexError, match="re-run `python -m repro index`"):
            Engine.from_store(path)

    def test_stale_slab_rebuild_opt_in(self, tmp_path):
        path = self._store_with_stale_index(tmp_path)
        engine = Engine.from_store(path, stale_slabs="rebuild")
        assert engine.stats()["connection_index"]["slabs_adopted"] == 0
        # The late tag must be visible: answers match a fresh kernel over
        # the mutated instance.
        fresh = S3kSearch(engine.instance).search("u1", ["campus"], k=5)
        assert engine.search("u1", ["campus"], k=5).result.results == fresh.results

    def test_adopt_payload_strict_vs_lenient(self, tmp_path):
        instance = figure1_instance()
        index = ConnectionIndex(instance).ensure_all()
        payloads = list(index.payloads())
        instance.add_tag(Tag(URI("t:x"), URI("d0.3.1"), URI("u4"), keyword="debate"))
        instance.saturate()
        stale = ConnectionIndex(instance)
        ident, header, blob = payloads[0]
        assert stale.adopt_payload(header, blob) is False  # lenient: skipped
        with pytest.raises(StaleIndexError):
            stale.adopt_payload(header, blob, strict=True)

    def test_invalid_stale_slabs_value(self, tmp_path):
        with pytest.raises(ValueError):
            Engine.from_store(tmp_path / "x.db", stale_slabs="whatever")


class TestRandomizedEquivalence:
    def test_facade_matches_kernel_on_random_instances(self):
        rng = random.Random(99)
        for _ in range(5):
            instance = random_instance(rng)
            engine = Engine(instance)
            kernel = S3kSearch(instance)
            seekers = sorted(instance.users)
            for _ in range(6):
                seeker = rng.choice(seekers)
                keywords = rng.sample(VOCABULARY, rng.randint(1, 2))
                k = rng.choice([1, 3, 5])
                response = engine.search(seeker, keywords, k=k)
                assert response.result.results == kernel.search(
                    seeker, keywords, k=k
                ).results
