"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def generated_db(tmp_path):
    path = tmp_path / "tiny.db"
    code = main(
        ["generate", "--dataset", "twitter", "--out", str(path), "--scale", "0.1"]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_creates_database(self, generated_db, capsys):
        assert generated_db.exists()

    def test_prints_statistics(self, tmp_path, capsys):
        main(
            [
                "generate",
                "--dataset",
                "vodkaster",
                "--out",
                str(tmp_path / "v.db"),
                "--scale",
                "0.1",
            ]
        )
        output = capsys.readouterr().out
        assert "Users" in output and "Documents" in output

    def test_rejects_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--dataset", "nope", "--out", str(tmp_path / "x.db")])


class TestSearch:
    def test_search_round_trip(self, generated_db, capsys):
        code = main(
            [
                "search",
                "--db",
                str(generated_db),
                "--seeker",
                "tw:u0",
                "--keywords",
                "w0",
                "-k",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "terminated by" in output

    def test_no_semantics_flag(self, generated_db, capsys):
        code = main(
            [
                "search",
                "--db",
                str(generated_db),
                "--seeker",
                "tw:u0",
                "--keywords",
                "w0",
                "--no-semantics",
            ]
        )
        assert code == 0

    def test_unknown_keyword_reports_empty(self, generated_db, capsys):
        main(
            [
                "search",
                "--db",
                str(generated_db),
                "--seeker",
                "tw:u0",
                "--keywords",
                "zzznope",
            ]
        )
        assert "no results" in capsys.readouterr().out


class TestBatch:
    def test_batch_reports_throughput(self, generated_db, capsys):
        code = main(
            [
                "batch",
                "--db",
                str(generated_db),
                "--queries",
                "8",
                "--batch-size",
                "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "throughput (q/s)" in output
        assert "latency p99" in output

    def test_batch_compare_sequential(self, generated_db, capsys):
        code = main(
            [
                "batch",
                "--db",
                str(generated_db),
                "--queries",
                "6",
                "--batch-size",
                "3",
                "--compare-sequential",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sequential throughput (q/s)" in output
        assert "speedup" in output

    def test_batch_with_deadline(self, generated_db, capsys):
        code = main(
            [
                "batch",
                "--db",
                str(generated_db),
                "--queries",
                "4",
                "--batch-size",
                "2",
                "--deadline",
                "0.5",
            ]
        )
        assert code == 0
        assert "deadline misses" in capsys.readouterr().out


class TestServe:
    def _serve(self, db, tmp_path, lines, extra=()):
        requests = tmp_path / "requests.jsonl"
        requests.write_text("\n".join(lines) + "\n")
        return main(
            ["serve", "--db", str(db), "--input", str(requests), "-k", "3", *extra]
        )

    def test_serve_answers_jsonl(self, generated_db, tmp_path, capsys):
        code = self._serve(
            generated_db,
            tmp_path,
            [
                '{"seeker": "tw:u0", "keywords": ["w0"], "k": 3}',
                '{"seeker": "tw:u1", "keywords": ["w0"]}',
                '{"seeker": "tw:u0", "keywords": ["w0"], "k": 3, "id": "dup"}',
            ],
            extra=["--stats"],
        )
        captured = capsys.readouterr()
        assert code == 0
        records = {
            record["id"]: record
            for record in map(json.loads, captured.out.strip().splitlines())
        }
        assert len(records) == 3
        assert records[0]["results"]  # non-empty answer with uri/lower/upper
        assert {"uri", "lower", "upper"} <= set(records[0]["results"][0])
        # The duplicate request returns the identical answer (collapsed or
        # replayed, depending on micro-batch timing).
        assert records["dup"]["results"] == records[0]["results"]
        assert "served 3/3 requests" in captured.err
        assert "batcher" in captured.err  # --stats engine table

    def test_serve_reports_bad_lines_and_fails(self, generated_db, tmp_path, capsys):
        code = self._serve(
            generated_db,
            tmp_path,
            ['{"seeker": "tw:u0", "keywords": ["w0"]}', "{broken"],
        )
        captured = capsys.readouterr()
        assert code == 1
        records = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert any("error" in record for record in records)
        assert any("results" in record for record in records)

    def test_serve_unknown_seeker_is_an_error_record(
        self, generated_db, tmp_path, capsys
    ):
        code = self._serve(
            generated_db,
            tmp_path,
            ['{"seeker": "tw:nobody", "keywords": ["w0"]}'],
        )
        captured = capsys.readouterr()
        assert code == 1
        (record,) = [json.loads(line) for line in captured.out.strip().splitlines()]
        # The structured error record shared with the HTTP tier.
        assert "unknown seeker" in record["error"]["message"]
        assert record["error"]["type"] == "not_found"
        assert record["error"]["status"] == 404


class TestServeHttp:
    def test_parse_hostport_accepts_host_colon_port(self):
        from repro.cli import _parse_hostport

        assert _parse_hostport("127.0.0.1:8080") == ("127.0.0.1", 8080)
        assert _parse_hostport("0.0.0.0:0") == ("0.0.0.0", 0)

    @pytest.mark.parametrize("bad", ["8080", "host:", ":8080", "host:http", ""])
    def test_parse_hostport_rejects_malformed(self, bad):
        import argparse

        from repro.cli import _parse_hostport

        with pytest.raises(argparse.ArgumentTypeError, match="HOST:PORT"):
            _parse_hostport(bad)

    def test_serve_http_end_to_end(self, generated_db, capsys, monkeypatch):
        """``serve --http`` boots, answers a query, and drains on SIGTERM.

        ``main`` blocks in the server loop on this (main) thread — the
        only thread where asyncio signal handlers work — so a worker
        thread plays the client and sends SIGTERM once it has an answer.
        The server's ready callback hands the worker the ephemeral port
        through an event: no sleeps, no port races.
        """
        import asyncio
        import os
        import signal
        import threading

        import repro.engine.http as http_module

        started = threading.Event()
        box = {}
        real_run = http_module.run_http_server

        def capturing_run(server, *, ready=None):
            def relay(s):
                if ready is not None:
                    ready(s)
                box["port"] = s.port
                started.set()

            return real_run(server, ready=relay)

        monkeypatch.setattr(http_module, "run_http_server", capturing_run)

        def client():
            assert started.wait(timeout=30), "server never became ready"

            async def ask():
                return await http_module.http_call(
                    box["port"],
                    "POST",
                    "/search",
                    body={"seeker": "tw:u0", "keywords": ["w0"], "k": 3},
                )

            box["response"] = asyncio.run(ask())
            os.kill(os.getpid(), signal.SIGTERM)

        worker = threading.Thread(target=client)
        worker.start()
        try:
            code = main(["serve", "--db", str(generated_db), "--http", "127.0.0.1:0"])
        finally:
            worker.join(timeout=30)
        assert not worker.is_alive()
        assert code == 0
        response = box["response"]
        assert response.status == 200
        assert response.json()["results"]
        err = capsys.readouterr().err
        assert "serving http://127.0.0.1:" in err and "[ready]" in err
        assert "served 1 queries" in err


class TestStaleIndexCli:
    @pytest.fixture()
    def stale_db(self, generated_db):
        code = main(["index", "--db", str(generated_db)])
        assert code == 0
        # Re-save a mutated instance over the indexed one: the persisted
        # slabs are now stale relative to the stored content.
        from repro import Tag, URI
        from repro.storage import SQLiteStore

        with SQLiteStore(generated_db) as store:
            instance = store.load_instance()
            node = sorted(instance.node_to_document)[0]
            instance.add_tag(Tag(URI("t:stale"), node, URI("tw:u0"), keyword="w0"))
            instance.saturate()
            store.save_instance(instance)
        return generated_db

    def test_stale_slab_aborts_cleanly(self, stale_db, capsys):
        code = main(
            ["search", "--db", str(stale_db), "--seeker", "tw:u0", "--keywords", "w0"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err and "repro index" in captured.err

    def test_rebuild_stale_index_flag_recovers(self, stale_db, capsys):
        code = main(
            [
                "search",
                "--db",
                str(stale_db),
                "--seeker",
                "tw:u0",
                "--keywords",
                "w0",
                "--rebuild-stale-index",
            ]
        )
        assert code == 0
        assert "terminated by" in capsys.readouterr().out


class TestCompare:
    def test_compare_prints_measures(self, generated_db, capsys):
        code = main(["compare", "--db", str(generated_db), "--queries", "4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Semantic reachability" in output
        assert "Intersection size" in output
