"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def generated_db(tmp_path):
    path = tmp_path / "tiny.db"
    code = main(
        ["generate", "--dataset", "twitter", "--out", str(path), "--scale", "0.1"]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_creates_database(self, generated_db, capsys):
        assert generated_db.exists()

    def test_prints_statistics(self, tmp_path, capsys):
        main(
            [
                "generate",
                "--dataset",
                "vodkaster",
                "--out",
                str(tmp_path / "v.db"),
                "--scale",
                "0.1",
            ]
        )
        output = capsys.readouterr().out
        assert "Users" in output and "Documents" in output

    def test_rejects_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--dataset", "nope", "--out", str(tmp_path / "x.db")])


class TestSearch:
    def test_search_round_trip(self, generated_db, capsys):
        code = main(
            [
                "search",
                "--db",
                str(generated_db),
                "--seeker",
                "tw:u0",
                "--keywords",
                "w0",
                "-k",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "terminated by" in output

    def test_no_semantics_flag(self, generated_db, capsys):
        code = main(
            [
                "search",
                "--db",
                str(generated_db),
                "--seeker",
                "tw:u0",
                "--keywords",
                "w0",
                "--no-semantics",
            ]
        )
        assert code == 0

    def test_unknown_keyword_reports_empty(self, generated_db, capsys):
        main(
            [
                "search",
                "--db",
                str(generated_db),
                "--seeker",
                "tw:u0",
                "--keywords",
                "zzznope",
            ]
        )
        assert "no results" in capsys.readouterr().out


class TestBatch:
    def test_batch_reports_throughput(self, generated_db, capsys):
        code = main(
            [
                "batch",
                "--db",
                str(generated_db),
                "--queries",
                "8",
                "--batch-size",
                "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "throughput (q/s)" in output
        assert "latency p99" in output

    def test_batch_compare_sequential(self, generated_db, capsys):
        code = main(
            [
                "batch",
                "--db",
                str(generated_db),
                "--queries",
                "6",
                "--batch-size",
                "3",
                "--compare-sequential",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sequential throughput (q/s)" in output
        assert "speedup" in output

    def test_batch_with_deadline(self, generated_db, capsys):
        code = main(
            [
                "batch",
                "--db",
                str(generated_db),
                "--queries",
                "4",
                "--batch-size",
                "2",
                "--deadline",
                "0.5",
            ]
        )
        assert code == 0
        assert "deadline misses" in capsys.readouterr().out


class TestCompare:
    def test_compare_prints_measures(self, generated_db, capsys):
        code = main(["compare", "--db", str(generated_db), "--queries", "4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Semantic reachability" in output
        assert "Intersection size" in output
