"""Tests for social paths: normalization (Example 2.3), proximity (Ex 3.1)."""

import math

import pytest

from repro.core import PathExplorer, ProximityIndex, S3kScore, bounded_social_proximity
from repro.core.oracle import exact_proximities
from repro.rdf import URI

from .fixtures import figure3_instance


class TestNormalization:
    def test_example_2_3_first_edge(self):
        # Path p starts at u0; its first edge (to URI0) is normalized by the
        # edges leaving u0: one to URI0 (weight 1), one to u3 (weight 0.3).
        instance = figure3_instance()
        explorer = PathExplorer(instance)
        normalized = {
            edge.target: n_w for edge, n_w in explorer.normalized_out_edges(URI("u0"))
        }
        assert normalized[URI("URI0")] == pytest.approx(1 / 1.3)
        assert normalized[URI("u3")] == pytest.approx(0.3 / 1.3)

    def test_example_2_3_second_edge(self):
        # After entering the document through URI0, the next edge exits
        # URI0.0.0 and is normalized by all edges leaving a fragment of
        # URI0: total weight 4, hence 1/4 = 0.25.
        instance = figure3_instance()
        explorer = PathExplorer(instance)
        edges, total = explorer.neighborhood_out_edges(URI("URI0"))
        assert total == pytest.approx(4.0)
        normalized = {
            (edge.source, edge.target): n_w
            for edge, n_w in explorer.normalized_out_edges(URI("URI0"))
        }
        assert normalized[(URI("URI0.0.0"), URI("a0"))] == pytest.approx(0.25)

    def test_normalization_depends_on_entry_point(self):
        # The same physical edge normalized differently when the path is
        # "at" URI0.1 (whose neighborhood is only {URI0, URI0.1}).
        instance = figure3_instance()
        explorer = PathExplorer(instance)
        _, total_at_01 = explorer.neighborhood_out_edges(URI("URI0.1"))
        _, total_at_root = explorer.neighborhood_out_edges(URI("URI0"))
        assert total_at_01 < total_at_root

    def test_normalized_weights_sum_to_one(self):
        instance = figure3_instance()
        explorer = PathExplorer(instance)
        for node in ("u0", "u1", "URI0", "URI0.0.0", "a0"):
            weights = [n_w for _, n_w in explorer.normalized_out_edges(URI(node))]
            if weights:
                assert sum(weights) == pytest.approx(1.0)


class TestPathEnumeration:
    def test_path_through_vertical_neighborhood(self):
        # The paper's example path: u2 → a0 → URI0.0.0 ⇢ URI0 → u0.
        instance = figure3_instance()
        explorer = PathExplorer(instance)
        paths = list(explorer.paths_between(URI("u2"), URI("u0"), 3))
        traversals = [
            tuple(edge.target for edge in path.edges) for path in paths
        ]
        assert (URI("a0"), URI("URI0.0.0"), URI("u0")) in traversals

    def test_sibling_barrier(self):
        # "it is not possible to move from URI0.1 to URI0.0.0 through a
        # vertical neighborhood": URI0.1 and URI0.0.0 are siblings, so a
        # path entering the document at URI0.1 cannot exit through
        # URI0.0.0's edges (only through URI0's or URI0.1's own).
        instance = figure3_instance()
        explorer = PathExplorer(instance)
        exits = {edge.source for edge, _ in explorer.normalized_out_edges(URI("URI0.1"))}
        assert URI("URI0.0.0") not in exits
        assert URI("URI0.0") not in exits
        # Whereas entering at the root URI0 allows exiting anywhere.
        root_exits = {
            edge.source for edge, _ in explorer.normalized_out_edges(URI("URI0"))
        }
        assert URI("URI0.0.0") in root_exits

    def test_path_proximity_is_product(self):
        instance = figure3_instance()
        explorer = PathExplorer(instance)
        for path in explorer.paths_up_to(URI("u0"), 3):
            assert path.proximity() == pytest.approx(
                math.prod(path.normalized_weights)
            )

    def test_proximity_decreases_with_concatenation(self):
        # −→prox(p1 || p2) ≤ min(−→prox(p1), −→prox(p2)).
        instance = figure3_instance()
        explorer = PathExplorer(instance)
        for path in explorer.paths_up_to(URI("u0"), 3):
            if len(path) >= 2:
                prefix_prox = math.prod(path.normalized_weights[:-1])
                assert path.proximity() <= prefix_prox + 1e-12


class TestBoundedProximity:
    def test_example_3_1(self):
        # prox≤1(u0, URI0) = Cγ · (1/1.3) / γ  plus nothing else at length 1.
        instance = figure3_instance()
        gamma = 2.0
        expected = ((gamma - 1) / gamma) * (1 / 1.3) / gamma
        result = bounded_social_proximity(
            instance, URI("u0"), URI("URI0"), 1, gamma=gamma, include_empty=False
        )
        assert result == pytest.approx(expected)

    def test_proximity_monotone_in_horizon(self):
        instance = figure3_instance()
        values = [
            bounded_social_proximity(instance, URI("u0"), URI("u1"), n)
            for n in range(1, 5)
        ]
        for shorter, longer in zip(values, values[1:]):
            assert longer >= shorter - 1e-12

    def test_self_proximity_includes_empty_path(self):
        instance = figure3_instance()
        value = bounded_social_proximity(instance, URI("u2"), URI("u2"), 0)
        assert value == pytest.approx(0.5)  # Cγ for γ=2

    def test_proximity_bounded_by_one(self):
        instance = figure3_instance()
        for target in ("u0", "u1", "URI0", "a0"):
            value = bounded_social_proximity(instance, URI("u0"), URI(target), 6)
            assert 0.0 <= value <= 1.0


class TestMatrixEngineAgreement:
    """The sparse matrix engine must agree with explicit path enumeration."""

    @pytest.mark.parametrize("use_matrix", [True, False])
    def test_accumulated_prox_matches_enumeration(self, use_matrix):
        instance = figure3_instance()
        score = S3kScore(gamma=2.0)
        index = ProximityIndex(instance, use_matrix=use_matrix)
        seeker = URI("u0")
        horizon = 4

        border = index.start_vector(seeker)
        accumulated = border * score.c_gamma
        for _ in range(horizon):
            border = index.step(border) / score.gamma
            accumulated += score.c_gamma * border

        for target in ("u1", "u2", "u3", "URI0", "URI1", "a0"):
            expected = bounded_social_proximity(
                instance, seeker, URI(target), horizon, gamma=2.0
            )
            actual = index.source_proximity(accumulated, URI(target))
            assert actual == pytest.approx(expected, rel=1e-9), target

    def test_naive_and_matrix_steps_agree(self):
        instance = figure3_instance()
        matrix_index = ProximityIndex(instance, use_matrix=True)
        naive_index = ProximityIndex(instance, use_matrix=False)
        border_m = matrix_index.start_vector(URI("u0"))
        border_n = naive_index.start_vector(URI("u0"))
        for _ in range(5):
            border_m = matrix_index.step(border_m)
            border_n = naive_index.step(border_n)
            assert border_m == pytest.approx(border_n)

    def test_tail_bound_dominates_remaining_mass(self):
        # prox − prox≤n ≤ γ^{−(n+1)}: check against a high-precision run.
        instance = figure3_instance()
        score = S3kScore(gamma=2.0)
        exact, index = exact_proximities(instance, URI("u0"), score, tolerance=1e-14)
        for n in range(1, 8):
            border = index.start_vector(URI("u0"))
            accumulated = border * score.c_gamma
            for _ in range(n):
                border = index.step(border) / score.gamma
                accumulated += score.c_gamma * border
            for target in ("u1", "u2", "URI0", "a0"):
                gap = index.source_proximity(exact, URI(target)) - index.source_proximity(
                    accumulated, URI(target)
                )
                assert gap <= score.prox_tail_bound(n) + 1e-12
