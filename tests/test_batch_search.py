"""Batched execution (``S3kSearch.search_many``) vs sequential ``search``.

The contract under test (ISSUE 1): batched lock-step execution returns
**bit-identical** ``RankedResult`` lists to running every query through
``search`` on its own — on the paper fixtures and on randomized
instances — and the batched answers still agree with the exhaustive
oracle of :mod:`repro.core.oracle`.
"""

import random

import pytest

from repro.core import S3kSearch, exact_scores, exact_top_k
from repro.queries import QuerySpec

from .fixtures import figure1_instance, figure3_instance, two_community_instance
from .instance_gen import VOCABULARY, random_instance

#: Randomized instances checked for batched/sequential agreement
#: (acceptance criterion: >= 50).
N_RANDOM_INSTANCES = 50


def _batch_for(instance, rng, n_queries=6):
    seekers = sorted(instance.users)
    queries = []
    for _ in range(n_queries):
        queries.append(
            (
                rng.choice(seekers),
                rng.sample(VOCABULARY, rng.randint(1, 2)),
                rng.choice([1, 3, 5]),
            )
        )
    return queries


def _assert_bit_identical(engine, queries, batch_results):
    assert len(batch_results) == len(queries)
    for index, ((seeker, keywords, k), batched) in enumerate(
        zip(queries, batch_results)
    ):
        single = engine.search(seeker, keywords, k=k)
        assert batched.results == single.results
        assert batched.iterations == single.iterations
        assert batched.terminated_by == single.terminated_by
        assert batched.batch_index == index


class TestFixtureEquivalence:
    def test_figure1_grid(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        queries = [
            (seeker, keywords, k)
            for seeker in ("u0", "u1", "u4")
            for keywords in (["debate"], ["degre"], ["university", "degre"])
            for k in (1, 3, 5)
        ]
        _assert_bit_identical(engine, queries, engine.search_many(queries))

    def test_figure3_grid(self):
        instance = figure3_instance()
        engine = S3kSearch(instance)
        queries = [
            (seeker, [keyword], k)
            for seeker in ("u0", "u1", "u2", "u3")
            for keyword in ("k0", "k1", "k2")
            for k in (1, 2, 5)
        ]
        _assert_bit_identical(engine, queries, engine.search_many(queries))

    def test_two_communities_mixed_seekers(self):
        instance = two_community_instance()
        engine = S3kSearch(instance)
        queries = [(f"u{i}", ["python"], 2) for i in range(6)]
        _assert_bit_identical(engine, queries, engine.search_many(queries))


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(N_RANDOM_INSTANCES))
    def test_batch_matches_sequential_and_oracle(self, seed):
        rng = random.Random(seed)
        instance = random_instance(rng)
        engine = S3kSearch(instance)
        queries = _batch_for(instance, rng, n_queries=4)
        batch = engine.search_many(queries)
        _assert_bit_identical(engine, queries, batch)
        # Oracle agreement for the batched answers (threshold-terminated
        # queries answer exactly per Definition 3.2).
        for (seeker, keywords, k), result in zip(queries, batch):
            if result.terminated_by != "threshold":
                continue
            exact = exact_scores(instance, seeker, keywords)
            for ranked in result.results:
                value = exact.get(ranked.uri, 0.0)
                assert ranked.lower - 1e-9 <= value <= ranked.upper + 1e-9
            got = sorted((exact.get(u, 0.0) for u in result.uris), reverse=True)
            want = sorted(
                (s for _, s in exact_top_k(instance, seeker, keywords, k)),
                reverse=True,
            )
            assert len(got) == len(want)
            for g, w in zip(got, want):
                assert g == pytest.approx(w, rel=1e-6, abs=1e-12)


class TestBatchSemantics:
    def test_empty_batch(self):
        engine = S3kSearch(figure1_instance())
        assert engine.search_many([]) == []

    def test_accepts_query_specs_and_tuples(self):
        engine = S3kSearch(figure1_instance())
        from repro.rdf import URI

        mixed = [
            QuerySpec(URI("u1"), ("debate",), 3),
            ("u1", ["debate"]),
            ("u1", ["debate"], 3),
        ]
        results = engine.search_many(mixed, k=3)
        assert results[0].results == results[1].results == results[2].results

    def test_rejects_malformed_queries(self):
        engine = S3kSearch(figure1_instance())
        with pytest.raises(TypeError):
            engine.search_many([("u1",)])

    def test_unknown_seeker_raises(self):
        engine = S3kSearch(figure1_instance())
        with pytest.raises(KeyError):
            engine.search_many([("u:ghost", ["debate"])])

    def test_duplicate_queries_coalesce(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        queries = [("u1", ["debate"], 3)] * 4 + [("u0", ["degre"], 3)]
        results = engine.search_many(queries)
        single = engine.search("u1", ["debate"], k=3)
        for index in range(4):
            assert results[index].results == single.results
            assert results[index].batch_index == index
        assert results[4].results == engine.search("u0", ["degre"], k=3).results

    def test_per_query_k_overrides_default(self):
        engine = S3kSearch(figure1_instance())
        small, large = engine.search_many(
            [("u1", ["debate"], 1), ("u1", ["debate"], 5)], k=3
        )
        assert len(small.results) <= 1
        assert small.k == 1 and large.k == 5

    def test_anytime_budget_applies_per_query(self):
        engine = S3kSearch(figure1_instance())
        results = engine.search_many(
            [("u1", ["debate"]), ("u0", ["degre"])], k=3, max_iterations=1
        )
        for result in results:
            assert result.iterations <= 1

    def test_wall_time_and_batch_index_populated(self):
        engine = S3kSearch(figure1_instance())
        results = engine.search_many([("u1", ["debate"]), ("u0", ["degre"])], k=3)
        for index, result in enumerate(results):
            assert result.batch_index == index
            assert result.wall_time > 0.0

    def test_sequential_search_reports_wall_time(self):
        engine = S3kSearch(figure1_instance())
        result = engine.search("u1", ["debate"], k=3)
        assert result.wall_time == result.elapsed_seconds > 0.0
        assert result.batch_index == 0

    def test_naive_engine_batches_too(self):
        instance = figure1_instance()
        engine = S3kSearch(instance, use_matrix=False)
        queries = [("u1", ["debate"], 3), ("u0", ["degre"], 3)]
        _assert_bit_identical(engine, queries, engine.search_many(queries))


class TestMixedBudgetEquivalence:
    """ISSUE 9: budgeted and unbudgeted columns in ONE batch, retiring at
    different iterations, must stay bit-identical to per-query ``search``
    with the same per-query budgets — including ``terminated_by``."""

    @pytest.mark.parametrize("seed", range(1000, 1000 + N_RANDOM_INSTANCES))
    def test_mixed_k_and_anytime_budgets_in_one_batch(self, seed):
        from repro.engine import QueryRequest

        rng = random.Random(seed)
        instance = random_instance(rng)
        engine = S3kSearch(instance, result_cache_size=0)
        seekers = sorted(instance.users)
        requests = []
        for index in range(6):
            seeker = rng.choice(seekers)
            keywords = tuple(rng.sample(VOCABULARY, rng.randint(1, 2)))
            k = rng.choice([1, 2, 5])
            if index % 3 == 1:
                # hard iteration budget: retires early, answers "anytime"
                budget = {"max_iterations": rng.choice([1, 2, 4])}
            elif index % 3 == 2:
                # huge time budget: never fires, must not perturb results
                budget = {"time_budget": 1e6}
            else:
                budget = {}
            requests.append(QueryRequest(seeker, keywords, k=k, **budget))
        batch = engine.search_many(requests)
        assert len(batch) == len(requests)
        for index, (request, batched) in enumerate(zip(requests, batch)):
            single = engine.search(
                request.seeker,
                request.keywords,
                k=request.k,
                max_iterations=request.max_iterations,
                time_budget=request.time_budget,
            )
            assert batched.results == single.results
            assert batched.iterations == single.iterations
            assert batched.terminated_by == single.terminated_by
            assert batched.batch_index == index
            if request.max_iterations is not None:
                assert batched.iterations <= request.max_iterations
            assert batched.terminated_by in ("threshold", "anytime")

    def test_budgeted_and_unbudgeted_retire_at_different_iterations(self):
        from repro.engine import QueryRequest

        engine = S3kSearch(two_community_instance(), result_cache_size=0)
        requests = [
            QueryRequest("u0", ("python",), k=2),
            QueryRequest("u0", ("python",), k=2, max_iterations=1),
        ]
        free, capped = engine.search_many(requests)
        assert capped.iterations == 1
        assert capped.terminated_by == "anytime"
        assert free.terminated_by == "threshold"
        assert free.iterations > capped.iterations
        # the unbudgeted column kept exploring after the budgeted one
        # retired, and still matches its sequential answer exactly
        single = engine.search("u0", ["python"], k=2)
        assert free.results == single.results


class TestBatchCacheReplay:
    def test_replay_refreshes_both_timing_fields(self):
        engine = S3kSearch(figure1_instance(), result_cache_size=8)
        queries = [("u1", ["debate"], 3)]
        first = engine.search_many(queries)[0]
        replayed = engine.search_many(queries)[0]
        assert engine.cache_stats["hits"] >= 1
        assert replayed.results == first.results
        # ISSUE 9 satellite: search_many replays used to refresh only
        # wall_time, leaving elapsed_seconds stale from the cached result;
        # both paths must keep the two fields consistent.
        assert replayed.wall_time == replayed.elapsed_seconds
        assert replayed.wall_time > 0.0

    def test_sequential_replay_keeps_fields_consistent(self):
        engine = S3kSearch(figure1_instance(), result_cache_size=8)
        engine.search("u1", ["debate"], k=3)
        replayed = engine.search("u1", ["debate"], k=3)
        assert engine.cache_stats["hits"] >= 1
        assert replayed.wall_time == replayed.elapsed_seconds > 0.0


class TestExplorationCounters:
    def test_fast_and_full_counters_cover_every_certification(self):
        engine = S3kSearch(two_community_instance(), result_cache_size=0)
        queries = [(f"u{i}", ["python"], 2) for i in range(6)]
        results = engine.search_many(queries)
        stats = engine.exploration_stats
        total_iterations = sum(r.iterations for r in results)
        # every iteration of every live query certified its stop exactly
        # once, through either the vector screen or the exact replay
        stop_total = stats["stop_checks_fast"] + stats["stop_checks_full"]
        assert stop_total >= total_iterations
        clean_total = stats["clean_checks_fast"] + stats["clean_checks_full"]
        assert clean_total >= 1
        assert stats["bounds_refresh_rows"] >= 1
        assert stats["batch_layout_builds"] >= 1
        assert stats["batch_refresh_passes"] >= 1

    def test_counters_are_monotone_across_batches(self):
        engine = S3kSearch(figure1_instance(), result_cache_size=0)
        engine.search_many([("u1", ["debate"], 3)])
        before = dict(engine.exploration_stats)
        engine.search_many([("u0", ["degre"], 3)])
        after = engine.exploration_stats
        for name, value in before.items():
            assert after[name] >= value

    def test_phase_seconds_populated_by_batched_loop(self):
        engine = S3kSearch(figure1_instance(), result_cache_size=0)
        engine.search_many([("u1", ["debate"], 3), ("u0", ["degre"], 3)])
        stats = engine.exploration_stats
        phases = {
            name: stats[name]
            for name in stats
            if str(name).startswith("phase_")
        }
        assert set(phases) == {
            "phase_step_seconds",
            "phase_discover_seconds",
            "phase_bounds_seconds",
            "phase_clean_stop_seconds",
        }
        assert sum(phases.values()) > 0.0

    def test_batch_stats_surface_exploration_counters(self):
        from repro.queries import Workload
        from repro.queries.runner import run_workload_batched

        instance = figure1_instance()
        engine = S3kSearch(instance, result_cache_size=0)
        workload = Workload(name="w", frequency="+", n_keywords=1, k=3)
        workload.queries = [
            QuerySpec("u1", ("debate",), 3),
            QuerySpec("u0", ("degre",), 3),
        ]
        stats = run_workload_batched(engine, workload, batch_size=2)
        assert stats.exploration_stats["stop_checks_fast"] + stats.exploration_stats[
            "stop_checks_full"
        ] >= 1
        assert stats.exploration_stats["bounds_refresh_rows"] >= 1
